"""Parameterised TPC-H query variants.

The official benchmark draws substitution parameters per stream; the
fixed validation values in :mod:`repro.workloads.tpch.queries` make runs
reproducible but under-represent the *diversity* a real mixed workload
has.  This module builds parameterised variants of the queries whose
parameters move the selectivity the most — different Q6 year/discount
windows, Q3 market segments, Q5 regions, Q12 ship-mode pairs and Q14
months — for workloads that want the paper's "many different CPU and
memory consumption patterns" (§III) dialled up.

Variant names encode their parameters (``q6_y1994``, ``q3_machinery``),
so result attribution stays per-variant.
"""

from __future__ import annotations

from ...db.expressions import (And, Between, Case, Col, Const, InList,
                               eq, ge, gt, lt)
from ...db.operators import (Aggregate, Filter, Join, Limit, OrderBy,
                             PlanNode, Project, Scan)
from .queries import _revenue
from .schema import (MKT_SEGMENTS, REGIONS, date_index, region_code,
                     segment_code, ship_mode_code)


def q6_variant(year: int, discount: float = 0.06,
               quantity: int = 24) -> PlanNode:
    """Q6 with the official substitution ranges (year, discount, qty)."""
    predicate = And(ge(Col("l_shipdate"), date_index(f"{year}-01-01")),
                    lt(Col("l_shipdate"), date_index(f"{year + 1}-01-01")),
                    Between(Col("l_discount"), discount - 0.011,
                            discount + 0.011),
                    lt(Col("l_quantity"), quantity))
    selected = Filter(Scan("lineitem"), predicate,
                      keep=["l_extendedprice", "l_discount"])
    selected.mal_name = "algebra.thetasubselect"
    return Aggregate(
        Project(selected, {"rev": Col("l_extendedprice")
                           * Col("l_discount")}),
        [], {"revenue": ("sum", Col("rev"))})


def q3_variant(segment: str, cutoff: str = "1995-03-15") -> PlanNode:
    """Q3 for one market segment."""
    day = date_index(cutoff)
    cust = Filter(Scan("customer"),
                  eq(Col("c_mktsegment"), segment_code(segment)),
                  keep=["c_custkey"])
    orders = Filter(Scan("orders"), lt(Col("o_orderdate"), day),
                    keep=["o_orderkey", "o_custkey", "o_orderdate",
                          "o_shippriority"])
    orders = Join(orders, cust, ["o_custkey"], ["c_custkey"], how="semi")
    li = Filter(Scan("lineitem"), gt(Col("l_shipdate"), day),
                keep=["l_orderkey", "l_extendedprice", "l_discount"])
    joined = Join(li, orders, ["l_orderkey"], ["o_orderkey"],
                  how="inner", keep_right=["o_orderdate",
                                           "o_shippriority"])
    agg = Aggregate(joined,
                    ["l_orderkey", "o_orderdate", "o_shippriority"],
                    {"revenue": ("sum", _revenue())})
    return Limit(OrderBy(agg, ["revenue", "o_orderdate"],
                         [False, True]), 10)


def q5_variant(region: str, year: int = 1994) -> PlanNode:
    """Q5 for one region/year."""
    target = Filter(Scan("region"),
                    eq(Col("r_name"), region_code(region)),
                    keep=["r_regionkey"])
    nations = Join(Scan("nation"), target, ["n_regionkey"],
                   ["r_regionkey"], how="semi",
                   keep_left=["n_nationkey", "n_name"])
    cust = Join(Scan("customer"), nations, ["c_nationkey"],
                ["n_nationkey"], how="semi",
                keep_left=["c_custkey", "c_nationkey"])
    orders = Filter(
        Scan("orders"),
        And(ge(Col("o_orderdate"), date_index(f"{year}-01-01")),
            lt(Col("o_orderdate"), date_index(f"{year + 1}-01-01"))),
        keep=["o_orderkey", "o_custkey"])
    orders = Join(orders, cust, ["o_custkey"], ["c_custkey"],
                  how="inner", keep_left=["o_orderkey"],
                  keep_right=["c_nationkey"])
    li = Join(Scan("lineitem"), orders, ["l_orderkey"], ["o_orderkey"],
              how="inner",
              keep_left=["l_suppkey", "l_extendedprice", "l_discount"],
              keep_right=["c_nationkey"])
    supp = Scan("supplier", ["s_suppkey", "s_nationkey"])
    li = Join(li, supp, ["l_suppkey", "c_nationkey"],
              ["s_suppkey", "s_nationkey"], how="semi")
    agg = Aggregate(li, ["c_nationkey"], {"revenue": ("sum", _revenue())})
    return OrderBy(agg, ["revenue"], [False])


def q12_variant(mode_a: str, mode_b: str, year: int = 1994) -> PlanNode:
    """Q12 for one ship-mode pair/year."""
    modes = [ship_mode_code(mode_a), ship_mode_code(mode_b)]
    li = Filter(
        Scan("lineitem"),
        And(InList(Col("l_shipmode"), modes),
            lt(Col("l_commitdate"), Col("l_receiptdate")),
            lt(Col("l_shipdate"), Col("l_commitdate")),
            ge(Col("l_receiptdate"), date_index(f"{year}-01-01")),
            lt(Col("l_receiptdate"), date_index(f"{year + 1}-01-01"))),
        keep=["l_orderkey", "l_shipmode"])
    li = Join(li, Scan("orders", ["o_orderkey", "o_orderpriority"]),
              ["l_orderkey"], ["o_orderkey"], how="inner",
              keep_right=["o_orderpriority"])
    agg = Aggregate(li, ["l_shipmode"],
                    {"line_count": ("count", None)})
    return OrderBy(agg, ["l_shipmode"])


def q14_variant(year: int, month: int) -> PlanNode:
    """Q14 for one month."""
    start = date_index(f"{year}-{month:02d}-01")
    li = Filter(Scan("lineitem"),
                And(ge(Col("l_shipdate"), start),
                    lt(Col("l_shipdate"), start + 30)),
                keep=["l_partkey", "l_extendedprice", "l_discount"])
    li = Join(li, Scan("part", ["p_partkey", "p_type"]),
              ["l_partkey"], ["p_partkey"], how="inner",
              keep_right=["p_type"])
    promo_codes = list(range(3 * 25, 4 * 25))
    flagged = Project(li, {
        "promo": Case(InList(Col("p_type"), promo_codes), _revenue(),
                      Const(0.0)),
        "total": _revenue(),
    })
    agg = Aggregate(flagged, [], {
        "promo": ("sum", Col("promo")),
        "total": ("sum", Col("total")),
    })
    return Project(agg, {"promo_revenue":
                         Const(100.0) * Col("promo")
                         / (Col("total") + Const(1e-9))})


def build_variants() -> dict[str, PlanNode]:
    """All parameterised variants, keyed by an encoding name."""
    variants: dict[str, PlanNode] = {}
    for year in (1993, 1994, 1995, 1996, 1997):
        variants[f"q6_y{year}"] = q6_variant(year)
    for segment in MKT_SEGMENTS:
        key = segment.lower().replace(" ", "_")
        variants[f"q3_{key}"] = q3_variant(segment)
    for region in REGIONS:
        key = region.lower().replace(" ", "_")
        variants[f"q5_{key}"] = q5_variant(region)
    for pair in (("MAIL", "SHIP"), ("AIR", "TRUCK"), ("RAIL", "FOB")):
        variants[f"q12_{pair[0].lower()}_{pair[1].lower()}"] = \
            q12_variant(*pair)
    for year, month in ((1995, 9), (1994, 3), (1996, 6)):
        variants[f"q14_{year}_{month:02d}"] = q14_variant(year, month)
    return variants
