"""Physical-plan builders for the 22 TPC-H queries.

Each builder returns a :class:`~repro.db.operators.PlanNode` tree over the
synthetic schema (dictionary codes, day-index dates, flag columns — see
:mod:`repro.workloads.tpch.schema`).  Parameters are the TPC-H validation
values.  Output column sets are trimmed to the numeric columns the schema
carries (names/addresses/comment texts are not generated), but the *join
and aggregation structure* — what the simulation costs — follows the
official queries operator for operator.

``build_queries(scale)`` needs the generated scale factor because Q11's
``HAVING value > fraction * total`` threshold scales with it, exactly as
the official query's ``0.0001 / SF``.
"""

from __future__ import annotations

from ...db.expressions import (And, Between, Case, Col, Const, Floor,
                               InList, Not, Or, eq, ge, gt, le, lt, ne)
from ...db.operators import (Aggregate, Distinct, Filter, Join, Limit,
                             OrderBy, PlanNode, Project, Scan)
from .schema import (brand_code, container_code, date_index, nation_code,
                     region_code, segment_code, ship_mode_code, type_code,
                     type_syllable3_codes)

QUERY_NAMES = [f"q{i}" for i in range(1, 23)]


def _year(col: str):
    """Approximate calendar year from a day index (1992 epoch)."""
    return Const(1992) + Floor(Col(col) / 365.25)


def _revenue():
    return Col("l_extendedprice") * (Const(1.0) - Col("l_discount"))


def _keyed(child: PlanNode, columns: list[str]) -> PlanNode:
    """Add a constant join key (scalar-subquery cross joins)."""
    outputs = {c: Col(c) for c in columns}
    outputs["join_key"] = Const(1)
    return Project(child, outputs)


# ---------------------------------------------------------------------------


def q1() -> PlanNode:
    """Pricing summary report."""
    li = Filter(Scan("lineitem"),
                le(Col("l_shipdate"), date_index("1998-09-02")),
                keep=["l_returnflag", "l_linestatus", "l_quantity",
                      "l_extendedprice", "l_discount", "l_tax"])
    agg = Aggregate(li, ["l_returnflag", "l_linestatus"], {
        "sum_qty": ("sum", Col("l_quantity")),
        "sum_base_price": ("sum", Col("l_extendedprice")),
        "sum_disc_price": ("sum", _revenue()),
        "sum_charge": ("sum", _revenue() * (Const(1.0) + Col("l_tax"))),
        "avg_qty": ("avg", Col("l_quantity")),
        "avg_price": ("avg", Col("l_extendedprice")),
        "avg_disc": ("avg", Col("l_discount")),
        "count_order": ("count", None),
    })
    return OrderBy(agg, ["l_returnflag", "l_linestatus"])


def q2() -> PlanNode:
    """Minimum-cost supplier (EUROPE, size 15, %BRASS)."""
    parts = Filter(Scan("part"),
                   And(eq(Col("p_size"), 15),
                       InList(Col("p_type"),
                              type_syllable3_codes("BRASS"))),
                   keep=["p_partkey"])
    europe = Filter(Scan("region"), eq(Col("r_name"),
                                       region_code("EUROPE")),
                    keep=["r_regionkey"])
    nations = Join(Scan("nation"), europe, ["n_regionkey"],
                   ["r_regionkey"], how="semi",
                   keep_left=["n_nationkey", "n_name"])
    supp = Join(Scan("supplier"), nations, ["s_nationkey"],
                ["n_nationkey"], how="inner",
                keep_left=["s_suppkey", "s_acctbal"],
                keep_right=["n_name"])
    ps = Join(Scan("partsupp"), parts, ["ps_partkey"], ["p_partkey"],
              how="inner",
              keep_left=["ps_partkey", "ps_suppkey", "ps_supplycost"],
              keep_right=[])
    ps_eu = Join(ps, supp, ["ps_suppkey"], ["s_suppkey"], how="inner",
                 keep_left=["ps_partkey", "ps_supplycost"],
                 keep_right=["s_acctbal", "n_name"])
    min_cost = Aggregate(ps_eu, ["ps_partkey"],
                         {"min_cost": ("min", Col("ps_supplycost"))})
    best = Join(ps_eu, min_cost,
                ["ps_partkey", "ps_supplycost"],
                ["ps_partkey", "min_cost"], how="semi")
    return Limit(OrderBy(best, ["s_acctbal", "n_name", "ps_partkey"],
                         [False, True, True]), 100)


def q3() -> PlanNode:
    """Shipping priority (BUILDING, 1995-03-15)."""
    cutoff = date_index("1995-03-15")
    cust = Filter(Scan("customer"),
                  eq(Col("c_mktsegment"), segment_code("BUILDING")),
                  keep=["c_custkey"])
    orders = Filter(Scan("orders"), lt(Col("o_orderdate"), cutoff),
                    keep=["o_orderkey", "o_custkey", "o_orderdate",
                          "o_shippriority"])
    orders = Join(orders, cust, ["o_custkey"], ["c_custkey"], how="semi")
    li = Filter(Scan("lineitem"), gt(Col("l_shipdate"), cutoff),
                keep=["l_orderkey", "l_extendedprice", "l_discount"])
    joined = Join(li, orders, ["l_orderkey"], ["o_orderkey"], how="inner",
                  keep_right=["o_orderdate", "o_shippriority"])
    agg = Aggregate(joined,
                    ["l_orderkey", "o_orderdate", "o_shippriority"],
                    {"revenue": ("sum", _revenue())})
    return Limit(OrderBy(agg, ["revenue", "o_orderdate"], [False, True]),
                 10)


def q4() -> PlanNode:
    """Order priority checking (1993-Q3)."""
    late = Filter(Scan("lineitem"),
                  lt(Col("l_commitdate"), Col("l_receiptdate")),
                  keep=["l_orderkey"])
    orders = Filter(Scan("orders"),
                    And(ge(Col("o_orderdate"), date_index("1993-07-01")),
                        lt(Col("o_orderdate"), date_index("1993-10-01"))),
                    keep=["o_orderkey", "o_orderpriority"])
    matched = Join(orders, late, ["o_orderkey"], ["l_orderkey"],
                   how="semi")
    agg = Aggregate(matched, ["o_orderpriority"],
                    {"order_count": ("count", None)})
    return OrderBy(agg, ["o_orderpriority"])


def q5() -> PlanNode:
    """Local supplier volume (ASIA, 1994)."""
    asia = Filter(Scan("region"), eq(Col("r_name"), region_code("ASIA")),
                  keep=["r_regionkey"])
    nations = Join(Scan("nation"), asia, ["n_regionkey"],
                   ["r_regionkey"], how="semi",
                   keep_left=["n_nationkey", "n_name"])
    cust = Join(Scan("customer"), nations, ["c_nationkey"],
                ["n_nationkey"], how="semi",
                keep_left=["c_custkey", "c_nationkey"])
    orders = Filter(Scan("orders"),
                    And(ge(Col("o_orderdate"), date_index("1994-01-01")),
                        lt(Col("o_orderdate"), date_index("1995-01-01"))),
                    keep=["o_orderkey", "o_custkey"])
    orders = Join(orders, cust, ["o_custkey"], ["c_custkey"],
                  how="inner", keep_left=["o_orderkey"],
                  keep_right=["c_nationkey"])
    li = Join(Scan("lineitem"), orders, ["l_orderkey"], ["o_orderkey"],
              how="inner",
              keep_left=["l_suppkey", "l_extendedprice", "l_discount"],
              keep_right=["c_nationkey"])
    # supplier must sit in the customer's nation (multi-key join)
    supp = Scan("supplier", ["s_suppkey", "s_nationkey"])
    li = Join(li, supp, ["l_suppkey", "c_nationkey"],
              ["s_suppkey", "s_nationkey"], how="semi")
    agg = Aggregate(li, ["c_nationkey"], {"revenue": ("sum", _revenue())})
    named = Join(agg, Scan("nation", ["n_nationkey", "n_name"]),
                 ["c_nationkey"], ["n_nationkey"], how="inner",
                 keep_right=["n_name"])
    return OrderBy(named, ["revenue"], [False])


def q6() -> PlanNode:
    """Forecasting revenue change — the paper's running example."""
    predicate = And(ge(Col("l_shipdate"), date_index("1997-01-01")),
                    lt(Col("l_shipdate"), date_index("1998-01-01")),
                    Between(Col("l_discount"), 0.07 - 0.011,
                            0.07 + 0.011),
                    lt(Col("l_quantity"), 24))
    selected = Filter(Scan("lineitem"), predicate,
                      keep=["l_extendedprice", "l_discount"])
    selected.mal_name = "algebra.thetasubselect"
    projected = Project(selected,
                        {"rev": Col("l_extendedprice")
                                * Col("l_discount")})
    agg = Aggregate(projected, [], {"revenue": ("sum", Col("rev"))})
    agg.mal_name = "aggr.sum"
    return agg


def q7() -> PlanNode:
    """Volume shipping (FRANCE <-> GERMANY, 1995-1996)."""
    fr, de = nation_code("FRANCE"), nation_code("GERMANY")
    supp = Filter(Scan("supplier"), InList(Col("s_nationkey"), [fr, de]),
                  keep=["s_suppkey", "s_nationkey"])
    cust = Filter(Scan("customer"), InList(Col("c_nationkey"), [fr, de]),
                  keep=["c_custkey", "c_nationkey"])
    orders = Join(Scan("orders", ["o_orderkey", "o_custkey"]), cust,
                  ["o_custkey"], ["c_custkey"], how="inner",
                  keep_left=["o_orderkey"], keep_right=["c_nationkey"])
    li = Filter(Scan("lineitem"),
                Between(Col("l_shipdate"), date_index("1995-01-01"),
                        date_index("1996-12-31")),
                keep=["l_orderkey", "l_suppkey", "l_shipdate",
                      "l_extendedprice", "l_discount"])
    li = Join(li, orders, ["l_orderkey"], ["o_orderkey"], how="inner",
              keep_right=["c_nationkey"])
    li = Join(li, supp, ["l_suppkey"], ["s_suppkey"], how="inner",
              keep_right=["s_nationkey"])
    li = Filter(li, Or(And(eq(Col("s_nationkey"), fr),
                           eq(Col("c_nationkey"), de)),
                       And(eq(Col("s_nationkey"), de),
                           eq(Col("c_nationkey"), fr))))
    vol = Project(li, {"supp_nation": Col("s_nationkey"),
                       "cust_nation": Col("c_nationkey"),
                       "l_year": _year("l_shipdate"),
                       "volume": _revenue()})
    agg = Aggregate(vol, ["supp_nation", "cust_nation", "l_year"],
                    {"revenue": ("sum", Col("volume"))})
    return OrderBy(agg, ["supp_nation", "cust_nation", "l_year"])


def q8() -> PlanNode:
    """National market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL)."""
    target_type = type_code("ECONOMY ANODIZED STEEL")
    brazil = nation_code("BRAZIL")
    parts = Filter(Scan("part"), eq(Col("p_type"), target_type),
                   keep=["p_partkey"])
    li = Join(Scan("lineitem",
                   ["l_partkey", "l_orderkey", "l_suppkey",
                    "l_extendedprice", "l_discount"]),
              parts, ["l_partkey"], ["p_partkey"], how="semi")
    america = Filter(Scan("region"),
                     eq(Col("r_name"), region_code("AMERICA")),
                     keep=["r_regionkey"])
    nations = Join(Scan("nation"), america, ["n_regionkey"],
                   ["r_regionkey"], how="semi", keep_left=["n_nationkey"])
    cust = Join(Scan("customer", ["c_custkey", "c_nationkey"]), nations,
                ["c_nationkey"], ["n_nationkey"], how="semi",
                keep_left=["c_custkey"])
    orders = Filter(Scan("orders"),
                    Between(Col("o_orderdate"), date_index("1995-01-01"),
                            date_index("1996-12-31")),
                    keep=["o_orderkey", "o_custkey", "o_orderdate"])
    orders = Join(orders, cust, ["o_custkey"], ["c_custkey"], how="semi",
                  keep_left=["o_orderkey", "o_orderdate"])
    li = Join(li, orders, ["l_orderkey"], ["o_orderkey"], how="inner",
              keep_right=["o_orderdate"])
    li = Join(li, Scan("supplier", ["s_suppkey", "s_nationkey"]),
              ["l_suppkey"], ["s_suppkey"], how="inner",
              keep_right=["s_nationkey"])
    vol = Project(li, {
        "o_year": _year("o_orderdate"),
        "volume": _revenue(),
        "brazil_volume": Case(eq(Col("s_nationkey"), brazil),
                              _revenue(), Const(0.0)),
    })
    agg = Aggregate(vol, ["o_year"], {
        "brazil": ("sum", Col("brazil_volume")),
        "total": ("sum", Col("volume")),
    })
    share = Project(agg, {"o_year": Col("o_year"),
                          "mkt_share": Col("brazil")
                                       / (Col("total") + Const(1e-9))})
    return OrderBy(share, ["o_year"])


def q9() -> PlanNode:
    """Product-type profit measure (%green% parts)."""
    parts = Filter(Scan("part"), eq(Col("p_name_green"), 1),
                   keep=["p_partkey"])
    li = Join(Scan("lineitem",
                   ["l_partkey", "l_suppkey", "l_orderkey", "l_quantity",
                    "l_extendedprice", "l_discount"]),
              parts, ["l_partkey"], ["p_partkey"], how="semi")
    li = Join(li, Scan("partsupp",
                       ["ps_partkey", "ps_suppkey", "ps_supplycost"]),
              ["l_partkey", "l_suppkey"], ["ps_partkey", "ps_suppkey"],
              how="inner", keep_right=["ps_supplycost"])
    li = Join(li, Scan("orders", ["o_orderkey", "o_orderdate"]),
              ["l_orderkey"], ["o_orderkey"], how="inner",
              keep_right=["o_orderdate"])
    li = Join(li, Scan("supplier", ["s_suppkey", "s_nationkey"]),
              ["l_suppkey"], ["s_suppkey"], how="inner",
              keep_right=["s_nationkey"])
    profit = Project(li, {
        "nation": Col("s_nationkey"),
        "o_year": _year("o_orderdate"),
        "amount": _revenue()
                  - Col("ps_supplycost") * Col("l_quantity"),
    })
    agg = Aggregate(profit, ["nation", "o_year"],
                    {"sum_profit": ("sum", Col("amount"))})
    return OrderBy(agg, ["nation", "o_year"], [True, False])


def q10() -> PlanNode:
    """Returned item reporting (1993-Q4)."""
    orders = Filter(Scan("orders"),
                    And(ge(Col("o_orderdate"), date_index("1993-10-01")),
                        lt(Col("o_orderdate"), date_index("1994-01-01"))),
                    keep=["o_orderkey", "o_custkey"])
    li = Filter(Scan("lineitem"), eq(Col("l_returnflag"), 2),  # 'R'
                keep=["l_orderkey", "l_extendedprice", "l_discount"])
    li = Join(li, orders, ["l_orderkey"], ["o_orderkey"], how="inner",
              keep_right=["o_custkey"])
    agg = Aggregate(li, ["o_custkey"], {"revenue": ("sum", _revenue())})
    cust = Join(agg, Scan("customer",
                          ["c_custkey", "c_nationkey", "c_acctbal"]),
                ["o_custkey"], ["c_custkey"], how="inner",
                keep_right=["c_nationkey", "c_acctbal"])
    named = Join(cust, Scan("nation", ["n_nationkey", "n_name"]),
                 ["c_nationkey"], ["n_nationkey"], how="inner",
                 keep_right=["n_name"])
    return Limit(OrderBy(named, ["revenue"], [False]), 20)


def q11(scale: float) -> PlanNode:
    """Important stock identification (GERMANY); HAVING scales with SF."""
    supp = Filter(Scan("supplier"),
                  eq(Col("s_nationkey"), nation_code("GERMANY")),
                  keep=["s_suppkey"])
    ps = Join(Scan("partsupp"), supp, ["ps_suppkey"], ["s_suppkey"],
              how="semi",
              keep_left=["ps_partkey", "ps_supplycost", "ps_availqty"])
    value = Project(ps, {"ps_partkey": Col("ps_partkey"),
                         "value": Col("ps_supplycost")
                                  * Col("ps_availqty")})
    by_part = Aggregate(value, ["ps_partkey"],
                        {"value": ("sum", Col("value"))})
    total = Aggregate(value, [], {"total": ("sum", Col("value"))})
    joined = Join(_keyed(by_part, ["ps_partkey", "value"]),
                  _keyed(total, ["total"]),
                  ["join_key"], ["join_key"], how="inner",
                  keep_left=["ps_partkey", "value"],
                  keep_right=["total"])
    fraction = 0.0001 / scale
    big = Filter(joined, gt(Col("value"),
                            Col("total") * Const(fraction)),
                 keep=["ps_partkey", "value"])
    return OrderBy(big, ["value"], [False])


def q12() -> PlanNode:
    """Shipping modes and order priority (MAIL, SHIP, 1994)."""
    modes = [ship_mode_code("MAIL"), ship_mode_code("SHIP")]
    li = Filter(Scan("lineitem"),
                And(InList(Col("l_shipmode"), modes),
                    lt(Col("l_commitdate"), Col("l_receiptdate")),
                    lt(Col("l_shipdate"), Col("l_commitdate")),
                    ge(Col("l_receiptdate"), date_index("1994-01-01")),
                    lt(Col("l_receiptdate"), date_index("1995-01-01"))),
                keep=["l_orderkey", "l_shipmode"])
    li = Join(li, Scan("orders", ["o_orderkey", "o_orderpriority"]),
              ["l_orderkey"], ["o_orderkey"], how="inner",
              keep_right=["o_orderpriority"])
    flagged = Project(li, {
        "l_shipmode": Col("l_shipmode"),
        "high": Case(InList(Col("o_orderpriority"), [0, 1]),
                     Const(1), Const(0)),
        "low": Case(InList(Col("o_orderpriority"), [0, 1]),
                    Const(0), Const(1)),
    })
    agg = Aggregate(flagged, ["l_shipmode"], {
        "high_line_count": ("sum", Col("high")),
        "low_line_count": ("sum", Col("low")),
    })
    return OrderBy(agg, ["l_shipmode"])


def q13() -> PlanNode:
    """Customer distribution (orders per customer, zeros included)."""
    orders = Filter(Scan("orders"), eq(Col("o_comment_special"), 0),
                    keep=["o_custkey"])
    per_cust = Aggregate(orders, ["o_custkey"],
                         {"c_count": ("count", None)})
    with_zeros = Join(Scan("customer", ["c_custkey"]), per_cust,
                      ["c_custkey"], ["o_custkey"], how="left",
                      keep_right=["c_count"], fill=0)
    dist = Aggregate(with_zeros, ["c_count"],
                     {"custdist": ("count", None)})
    return OrderBy(dist, ["custdist", "c_count"], [False, False])


def q14() -> PlanNode:
    """Promotion effect (1995-09)."""
    li = Filter(Scan("lineitem"),
                And(ge(Col("l_shipdate"), date_index("1995-09-01")),
                    lt(Col("l_shipdate"), date_index("1995-10-01"))),
                keep=["l_partkey", "l_extendedprice", "l_discount"])
    li = Join(li, Scan("part", ["p_partkey", "p_type"]),
              ["l_partkey"], ["p_partkey"], how="inner",
              keep_right=["p_type"])
    promo_codes = list(range(3 * 25, 4 * 25))  # PROMO * *
    flagged = Project(li, {
        "promo": Case(InList(Col("p_type"), promo_codes), _revenue(),
                      Const(0.0)),
        "total": _revenue(),
    })
    agg = Aggregate(flagged, [], {
        "promo": ("sum", Col("promo")),
        "total": ("sum", Col("total")),
    })
    return Project(agg, {"promo_revenue":
                         Const(100.0) * Col("promo")
                         / (Col("total") + Const(1e-9))})


def q15() -> PlanNode:
    """Top supplier (1996-Q1)."""
    li = Filter(Scan("lineitem"),
                And(ge(Col("l_shipdate"), date_index("1996-01-01")),
                    lt(Col("l_shipdate"), date_index("1996-04-01"))),
                keep=["l_suppkey", "l_extendedprice", "l_discount"])
    revenue = Aggregate(li, ["l_suppkey"],
                        {"total_revenue": ("sum", _revenue())})
    top = Aggregate(revenue, [],
                    {"max_revenue": ("max", Col("total_revenue"))})
    best = Join(_keyed(revenue, ["l_suppkey", "total_revenue"]),
                _keyed(top, ["max_revenue"]),
                ["join_key"], ["join_key"], how="inner",
                keep_left=["l_suppkey", "total_revenue"],
                keep_right=["max_revenue"])
    best = Filter(best, ge(Col("total_revenue"), Col("max_revenue")),
                  keep=["l_suppkey", "total_revenue"])
    named = Join(best, Scan("supplier", ["s_suppkey", "s_acctbal"]),
                 ["l_suppkey"], ["s_suppkey"], how="inner",
                 keep_right=["s_acctbal"])
    return OrderBy(named, ["l_suppkey"])


def q16() -> PlanNode:
    """Parts/supplier relationship (excluding complaint suppliers)."""
    medium_polished = [2 * 25 + 4 * 5 + s3 for s3 in range(5)]
    sizes = [49, 14, 23, 45, 19, 3, 36, 9]
    parts = Filter(Scan("part"),
                   And(ne(Col("p_brand"), brand_code("Brand#45")),
                       Not(InList(Col("p_type"), medium_polished)),
                       InList(Col("p_size"), sizes)),
                   keep=["p_partkey", "p_brand", "p_type", "p_size"])
    bad = Filter(Scan("supplier"), eq(Col("s_comment_complaints"), 1),
                 keep=["s_suppkey"])
    ps = Join(Scan("partsupp", ["ps_partkey", "ps_suppkey"]), bad,
              ["ps_suppkey"], ["s_suppkey"], how="anti")
    joined = Join(ps, parts, ["ps_partkey"], ["p_partkey"], how="inner",
                  keep_left=["ps_suppkey"],
                  keep_right=["p_brand", "p_type", "p_size"])
    agg = Aggregate(joined, ["p_brand", "p_type", "p_size"],
                    {"supplier_cnt":
                     ("count_distinct", Col("ps_suppkey"))})
    return OrderBy(agg, ["supplier_cnt", "p_brand", "p_type", "p_size"],
                   [False, True, True, True])


def q17() -> PlanNode:
    """Small-quantity-order revenue (Brand#23, MED BOX)."""
    parts = Filter(Scan("part"),
                   And(eq(Col("p_brand"), brand_code("Brand#23")),
                       eq(Col("p_container"), container_code("MED BOX"))),
                   keep=["p_partkey"])
    li = Join(Scan("lineitem",
                   ["l_partkey", "l_quantity", "l_extendedprice"]),
              parts, ["l_partkey"], ["p_partkey"], how="semi")
    avg_qty = Aggregate(li, ["l_partkey"],
                        {"avg_qty": ("avg", Col("l_quantity"))})
    joined = Join(li, avg_qty, ["l_partkey"], ["l_partkey"], how="inner",
                  keep_right=["avg_qty"])
    small = Filter(joined,
                   lt(Col("l_quantity"), Const(0.2) * Col("avg_qty")),
                   keep=["l_extendedprice"])
    agg = Aggregate(small, [],
                    {"sum_price": ("sum", Col("l_extendedprice"))})
    return Project(agg, {"avg_yearly": Col("sum_price") / Const(7.0)})


def q18() -> PlanNode:
    """Large-volume customers (quantity > 300)."""
    per_order = Aggregate(Scan("lineitem", ["l_orderkey", "l_quantity"]),
                          ["l_orderkey"],
                          {"sum_qty": ("sum", Col("l_quantity"))})
    big = Filter(per_order, gt(Col("sum_qty"), 300),
                 keep=["l_orderkey", "sum_qty"])
    joined = Join(big, Scan("orders",
                            ["o_orderkey", "o_custkey", "o_orderdate",
                             "o_totalprice"]),
                  ["l_orderkey"], ["o_orderkey"], how="inner",
                  keep_right=["o_custkey", "o_orderdate", "o_totalprice"])
    named = Join(joined, Scan("customer", ["c_custkey"]),
                 ["o_custkey"], ["c_custkey"], how="semi")
    return Limit(OrderBy(named, ["o_totalprice", "o_orderdate"],
                         [False, True]), 100)


def q19() -> PlanNode:
    """Discounted revenue (three brand/container/quantity disjuncts)."""
    modes = [ship_mode_code("AIR"), ship_mode_code("REG AIR")]
    li = Filter(Scan("lineitem"),
                And(InList(Col("l_shipmode"), modes),
                    eq(Col("l_shipinstruct"), 1)),  # DELIVER IN PERSON
                keep=["l_partkey", "l_quantity", "l_extendedprice",
                      "l_discount"])
    li = Join(li, Scan("part", ["p_partkey", "p_brand", "p_container",
                                "p_size"]),
              ["l_partkey"], ["p_partkey"], how="inner",
              keep_right=["p_brand", "p_container", "p_size"])

    def clause(brand: str, containers: list[str], qty_lo: int,
               size_hi: int):
        return And(eq(Col("p_brand"), brand_code(brand)),
                   InList(Col("p_container"),
                          [container_code(c) for c in containers]),
                   Between(Col("l_quantity"), qty_lo, qty_lo + 10),
                   Between(Col("p_size"), 1, size_hi))

    matched = Filter(li, Or(
        clause("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
               1, 5),
        clause("Brand#23", ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
               10, 10),
        clause("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
               20, 15)))
    return Aggregate(matched, [], {"revenue": ("sum", _revenue())})


def q20() -> PlanNode:
    """Potential part promotion (CANADA, 1994, %green% stock)."""
    parts = Filter(Scan("part"), eq(Col("p_name_green"), 1),
                   keep=["p_partkey"])
    li = Filter(Scan("lineitem"),
                And(ge(Col("l_shipdate"), date_index("1994-01-01")),
                    lt(Col("l_shipdate"), date_index("1995-01-01"))),
                keep=["l_partkey", "l_suppkey", "l_quantity"])
    shipped = Aggregate(li, ["l_partkey", "l_suppkey"],
                        {"sum_qty": ("sum", Col("l_quantity"))})
    ps = Join(Scan("partsupp",
                   ["ps_partkey", "ps_suppkey", "ps_availqty"]),
              parts, ["ps_partkey"], ["p_partkey"], how="semi")
    joined = Join(ps, shipped, ["ps_partkey", "ps_suppkey"],
                  ["l_partkey", "l_suppkey"], how="inner",
                  keep_right=["sum_qty"])
    excess = Filter(joined,
                    gt(Col("ps_availqty"),
                       Const(0.5) * Col("sum_qty")),
                    keep=["ps_suppkey"])
    excess = Distinct(excess, ["ps_suppkey"])
    canada = Filter(Scan("supplier"),
                    eq(Col("s_nationkey"), nation_code("CANADA")),
                    keep=["s_suppkey", "s_acctbal"])
    result = Join(canada, excess, ["s_suppkey"], ["ps_suppkey"],
                  how="semi")
    return OrderBy(result, ["s_suppkey"])


def q21() -> PlanNode:
    """Suppliers who kept orders waiting (SAUDI ARABIA)."""
    f_orders = Filter(Scan("orders"), eq(Col("o_orderstatus"), 0),  # 'F'
                      keep=["o_orderkey"])
    late = Filter(Scan("lineitem"),
                  gt(Col("l_receiptdate"), Col("l_commitdate")),
                  keep=["l_orderkey", "l_suppkey"])
    late = Join(late, f_orders, ["l_orderkey"], ["o_orderkey"],
                how="semi")
    # per-order supplier cardinalities: all suppliers vs late suppliers
    all_pairs = Distinct(Scan("lineitem", ["l_orderkey", "l_suppkey"]),
                         ["l_orderkey", "l_suppkey"])
    n_suppliers = Aggregate(all_pairs, ["l_orderkey"],
                            {"n_supp": ("count", None)})
    late_pairs = Distinct(late, ["l_orderkey", "l_suppkey"])
    n_late = Aggregate(late_pairs, ["l_orderkey"],
                       {"n_late": ("count", None)})
    multi = Filter(n_suppliers, ge(Col("n_supp"), 2),
                   keep=["l_orderkey"])
    solo_late = Filter(n_late, eq(Col("n_late"), 1),
                       keep=["l_orderkey"])
    candidates = Join(multi, solo_late, ["l_orderkey"], ["l_orderkey"],
                      how="semi")
    saudi = Filter(Scan("supplier"),
                   eq(Col("s_nationkey"), nation_code("SAUDI ARABIA")),
                   keep=["s_suppkey"])
    waiting = Join(late, saudi, ["l_suppkey"], ["s_suppkey"], how="semi")
    waiting = Join(waiting, candidates, ["l_orderkey"], ["l_orderkey"],
                   how="semi")
    agg = Aggregate(waiting, ["l_suppkey"], {"numwait": ("count", None)})
    return Limit(OrderBy(agg, ["numwait", "l_suppkey"], [False, True]),
                 100)


def q22() -> PlanNode:
    """Global sales opportunity (rich customers with no orders)."""
    codes = [13, 31, 23, 29, 30, 18, 17]
    cust = Filter(Scan("customer"), InList(Col("c_phone_cc"), codes),
                  keep=["c_custkey", "c_acctbal", "c_phone_cc"])
    positive = Filter(cust, gt(Col("c_acctbal"), 0.0),
                      keep=["c_acctbal"])
    avg_bal = Aggregate(positive, [],
                        {"avg_bal": ("avg", Col("c_acctbal"))})
    rich = Join(_keyed(cust, ["c_custkey", "c_acctbal", "c_phone_cc"]),
                _keyed(avg_bal, ["avg_bal"]),
                ["join_key"], ["join_key"], how="inner",
                keep_left=["c_custkey", "c_acctbal", "c_phone_cc"],
                keep_right=["avg_bal"])
    rich = Filter(rich, gt(Col("c_acctbal"), Col("avg_bal")),
                  keep=["c_custkey", "c_acctbal", "c_phone_cc"])
    inactive = Join(rich, Scan("orders", ["o_custkey"]),
                    ["c_custkey"], ["o_custkey"], how="anti")
    agg = Aggregate(inactive, ["c_phone_cc"], {
        "numcust": ("count", None),
        "totacctbal": ("sum", Col("c_acctbal")),
    })
    return OrderBy(agg, ["c_phone_cc"])


def build_queries(scale: float = 0.01) -> dict[str, PlanNode]:
    """All 22 query plans, keyed ``q1``..``q22``.

    ``scale`` is the *generated* scale factor (Q11's HAVING threshold is
    scale-dependent, per the official definition).
    """
    return {
        "q1": q1(), "q2": q2(), "q3": q3(), "q4": q4(), "q5": q5(),
        "q6": q6(), "q7": q7(), "q8": q8(), "q9": q9(), "q10": q10(),
        "q11": q11(scale), "q12": q12(), "q13": q13(), "q14": q14(),
        "q15": q15(), "q16": q16(), "q17": q17(), "q18": q18(),
        "q19": q19(), "q20": q20(), "q21": q21(), "q22": q22(),
    }
