"""TPC-H schema conventions used by the generator and the query builders.

Strings are dictionary-encoded into small integers (the columnar engine is
numeric); dates are stored as **day indexes** counted from 1992-01-01 so
that interval arithmetic is plain integer math.  LIKE-style predicates over
free text (``%green%``, ``%special%requests%``...) are materialised as
boolean flag columns at generation time with the selectivities the official
dbgen word lists produce.
"""

from __future__ import annotations

import datetime

from ...errors import WorkloadError

#: rows per table at scale factor 1.0 (dbgen's numbers)
SCALE_FACTOR_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,
}

_EPOCH = datetime.date(1992, 1, 1)

#: last order date dbgen emits
MAX_ORDER_DATE = "1998-08-02"


def date_index(iso: str) -> int:
    """Days since 1992-01-01 for an ISO date string (query parameters)."""
    try:
        year, month, day = (int(part) for part in iso.split("-"))
        value = datetime.date(year, month, day)
    except ValueError as exc:
        raise WorkloadError(f"bad date literal {iso!r}") from exc
    return (value - _EPOCH).days


# ---------------------------------------------------------------------------
# dictionary encodings
# ---------------------------------------------------------------------------

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]

#: nation -> region mapping (dbgen's)
NATION_REGION = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2,
                 4, 4, 2, 4, 0, 0, 0, 1, 2, 3,
                 4, 2, 3, 3, 1]

MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                "MACHINERY"]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW"]

SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]

SHIP_INSTRUCTS = ["COLLECT COD", "DELIVER IN PERSON", "NONE",
                  "TAKE BACK RETURN"]

RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUS = ["F", "O"]

#: p_type = "<syllable1> <syllable2> <syllable3>", 6 x 5 x 5 = 150 codes;
#: code = s1 * 25 + s2 * 5 + s3
TYPE_SYLLABLE_1 = ["ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL",
                   "STANDARD"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BRUSHED", "BURNISHED", "PLATED",
                   "POLISHED"]
TYPE_SYLLABLE_3 = ["BRASS", "COPPER", "NICKEL", "STEEL", "TIN"]

#: p_container = "<size> <kind>", 5 x 8 = 40 codes; code = size * 8 + kind
CONTAINER_SIZES = ["JUMBO", "LG", "MED", "SM", "WRAP"]
CONTAINER_KINDS = ["BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK",
                   "PKG"]

#: 25 brands, "Brand#MN" with M, N in 1..5; code = (M-1) * 5 + (N-1)
N_BRANDS = 25


def type_code(name: str) -> int:
    """Encode a full ``p_type`` string like ``"PROMO BRUSHED COPPER"``."""
    parts = name.split()
    if len(parts) != 3:
        raise WorkloadError(f"bad p_type {name!r}")
    try:
        s1 = TYPE_SYLLABLE_1.index(parts[0])
        s2 = TYPE_SYLLABLE_2.index(parts[1])
        s3 = TYPE_SYLLABLE_3.index(parts[2])
    except ValueError as exc:
        raise WorkloadError(f"bad p_type {name!r}") from exc
    return s1 * 25 + s2 * 5 + s3


def type_syllable1_codes(prefix: str) -> list[int]:
    """All type codes whose first syllable is ``prefix`` (``'PROMO%'``)."""
    s1 = TYPE_SYLLABLE_1.index(prefix)
    return [s1 * 25 + rest for rest in range(25)]


def type_syllable3_codes(suffix: str) -> list[int]:
    """All type codes whose last syllable is ``suffix`` (``'%BRASS'``)."""
    s3 = TYPE_SYLLABLE_3.index(suffix)
    return [s1 * 25 + s2 * 5 + s3 for s1 in range(6) for s2 in range(5)]


def container_code(name: str) -> int:
    """Encode a ``p_container`` string like ``"MED BOX"``."""
    parts = name.split()
    if len(parts) != 2:
        raise WorkloadError(f"bad p_container {name!r}")
    try:
        size = CONTAINER_SIZES.index(parts[0])
        kind = CONTAINER_KINDS.index(parts[1])
    except ValueError as exc:
        raise WorkloadError(f"bad p_container {name!r}") from exc
    return size * 8 + kind


def brand_code(name: str) -> int:
    """Encode ``"Brand#MN"``."""
    if not name.startswith("Brand#") or len(name) != 8:
        raise WorkloadError(f"bad brand {name!r}")
    m, n = int(name[6]), int(name[7])
    if not (1 <= m <= 5 and 1 <= n <= 5):
        raise WorkloadError(f"bad brand {name!r}")
    return (m - 1) * 5 + (n - 1)


def nation_code(name: str) -> int:
    """Encode a nation name."""
    try:
        return NATIONS.index(name)
    except ValueError as exc:
        raise WorkloadError(f"unknown nation {name!r}") from exc


def region_code(name: str) -> int:
    """Encode a region name."""
    try:
        return REGIONS.index(name)
    except ValueError as exc:
        raise WorkloadError(f"unknown region {name!r}") from exc


def segment_code(name: str) -> int:
    """Encode a market segment."""
    try:
        return MKT_SEGMENTS.index(name)
    except ValueError as exc:
        raise WorkloadError(f"unknown segment {name!r}") from exc


def ship_mode_code(name: str) -> int:
    """Encode a ship mode."""
    try:
        return SHIP_MODES.index(name)
    except ValueError as exc:
        raise WorkloadError(f"unknown ship mode {name!r}") from exc
