"""Shared fixtures: small machines, operating systems, tiny datasets."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, SchedulerConfig
from repro.hardware.prebuilt import opteron_8387, small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.thread import reset_thread_ids
from repro.workloads.tpch import build_queries, generate


@pytest.fixture(autouse=True)
def _fresh_thread_ids():
    """Keep thread ids deterministic per test."""
    reset_thread_ids()
    yield
    reset_thread_ids()


@pytest.fixture
def small_config() -> MachineConfig:
    """A 2x2 machine with a tiny L3 (evictions within a handful of pages)."""
    return small_numa()


@pytest.fixture
def opteron_config() -> MachineConfig:
    """The paper's 4x4 Opteron."""
    return opteron_8387()


@pytest.fixture
def os_small(small_config) -> OperatingSystem:
    """A booted 2x2 machine."""
    return OperatingSystem(small_config)


@pytest.fixture
def os_opteron(opteron_config) -> OperatingSystem:
    """A booted 4x4 Opteron."""
    return OperatingSystem(opteron_config)


@pytest.fixture
def fast_scheduler() -> SchedulerConfig:
    """Scheduler with a short balance interval for balancing tests."""
    return SchedulerConfig(balance_interval=0.002)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small TPC-H dataset shared by the whole session."""
    return generate(scale=0.003, sim_scale=0.25, seed=7)


@pytest.fixture(scope="session")
def tiny_queries(tiny_dataset):
    """The 22 plans matching the tiny dataset's scale."""
    return build_queries(scale=tiny_dataset.scale)
