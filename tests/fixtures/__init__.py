"""Deliberately broken model fixtures for the verification tests."""
