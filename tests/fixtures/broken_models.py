"""Deliberately broken performance models for the verify test-suite.

Each ``build_*`` function returns an object with the model surface the
static analyses expect (``net``, ``th_min``, ``th_max``, ``n_total``,
``n_min``, ``nalloc``), built around a *defective* variant of the
paper's 5-place / 8-transition net.  The CLI loads them via
``repro verify --fixture tests/fixtures/broken_models.py:build_gap``.

Defects on offer:

* :func:`build_gap` — ``t2`` only accepts ``u > th_min + 15``: metric
  values in ``(th_min, th_min + 15]`` enable nothing (guard gap);
* :func:`build_overlap` — ``t0`` accepts up to ``th_min + 15``,
  overlapping ``t2`` (guard overlap);
* :func:`build_leaky` — ``t4`` forgets to return the token to
  ``Checks`` (non-conservative arc: the monitoring token is lost);
* :func:`build_no_floor` — ``t7`` is missing: at ``nalloc == n_min`` an
  Idle classification deadlocks (the Checks token never returns);
* :func:`build_overshoot` — ``t5``'s bound is ``n_total + 2``: the
  core-count token can leave ``[n_min, n_total]``.
"""

from __future__ import annotations

from repro.core.petrinet import Arc, OutputArc, PetriNet, Transition


class BrokenModel:
    """The duck-typed model surface around a hand-built net."""

    def __init__(self, net: PetriNet, th_min: float, th_max: float,
                 n_total: int, n_min: int = 1):
        self.net = net
        self.th_min = th_min
        self.th_max = th_max
        self.n_total = n_total
        self.n_min = n_min
        self.metric_domain = (0.0, 100.0)

    @property
    def nalloc(self) -> int:
        token = self.net.place("Provision").peek()
        return int(token[0]) if token else self.n_min


def _build_net(th_min: float, th_max: float, n_total: int, n_min: int,
               *, t0_hi: float | None = None, t2_lo: float | None = None,
               leak_t4: bool = False, include_t7: bool = True,
               t5_cap: int | None = None) -> PetriNet:
    """The paper's net with injectable defects (defaults are correct)."""
    t0_hi = th_min if t0_hi is None else t0_hi
    t2_lo = th_min if t2_lo is None else t2_lo
    t5_cap = n_total if t5_cap is None else t5_cap
    net = PetriNet()
    for place in ("Checks", "Idle", "Stable", "Overload", "Provision"):
        net.add_place(place)
    net.add_transition(Transition(
        "t0", guard=lambda b: b["u"] <= t0_hi,
        guard_text=f"u <= {t0_hi}",
        inputs=[Arc("Checks", ("u",), "u"),
                Arc("Provision", ("na",), "na")],
        outputs=[OutputArc("Idle", lambda b: (b["u"], b["na"]), "na")]))
    net.add_transition(Transition(
        "t1", guard=lambda b: b["u"] >= th_max,
        guard_text=f"u >= {th_max}",
        inputs=[Arc("Checks", ("u",), "u"),
                Arc("Provision", ("na",), "na")],
        outputs=[OutputArc("Overload",
                           lambda b: (b["u"], b["na"]), "na")]))
    net.add_transition(Transition(
        "t2", guard=lambda b: t2_lo < b["u"] < th_max,
        guard_text=f"{t2_lo} < u < {th_max}",
        inputs=[Arc("Checks", ("u",), "u")],
        outputs=[OutputArc("Stable", lambda b: (b["u"],), "u")]))
    t4_outputs = [OutputArc("Provision", lambda b: (b["na"] - 1,), "na")]
    if not leak_t4:
        t4_outputs.append(OutputArc("Checks", lambda b: (b["u"],), "u"))
    net.add_transition(Transition(
        "t4", guard=lambda b: b["na"] > n_min,
        guard_text=f"nalloc > {n_min}",
        inputs=[Arc("Idle", ("u", "na"), "na")], outputs=t4_outputs))
    if include_t7:
        net.add_transition(Transition(
            "t7", guard=lambda b: b["na"] == n_min,
            guard_text=f"nalloc == {n_min}",
            inputs=[Arc("Idle", ("u", "na"), "na")],
            outputs=[OutputArc("Provision", lambda b: (b["na"],), "na"),
                     OutputArc("Checks", lambda b: (b["u"],), "u")]))
    net.add_transition(Transition(
        "t5", guard=lambda b: b["na"] < t5_cap,
        guard_text=f"nalloc < {t5_cap}",
        inputs=[Arc("Overload", ("u", "na"), "na")],
        outputs=[OutputArc("Provision", lambda b: (b["na"] + 1,), "na"),
                 OutputArc("Checks", lambda b: (b["u"],), "u")]))
    net.add_transition(Transition(
        "t6", guard=lambda b: b["na"] == t5_cap,
        guard_text=f"nalloc == {t5_cap}",
        inputs=[Arc("Overload", ("u", "na"), "na")],
        outputs=[OutputArc("Provision", lambda b: (b["na"],), "na"),
                 OutputArc("Checks", lambda b: (b["u"],), "u")]))
    net.add_transition(Transition(
        "t3", inputs=[Arc("Stable", ("u",), "u")],
        outputs=[OutputArc("Checks", lambda b: (b["u"],), "u")]))
    net.set_token("Provision", (float(n_min),))
    return net


def build_correct() -> BrokenModel:
    """Control case: the defect-free net (verification must pass)."""
    return BrokenModel(_build_net(10.0, 70.0, 4, 1), 10.0, 70.0, 4)


def build_gap() -> BrokenModel:
    """Guard gap: no transition accepts u in (10, 25]."""
    model = BrokenModel(_build_net(10.0, 70.0, 4, 1, t2_lo=25.0),
                        10.0, 70.0, 4)
    model.breakpoints = (25.0,)
    return model


def build_overlap() -> BrokenModel:
    """Guard overlap: both t0 and t2 accept u in (10, 25]."""
    model = BrokenModel(_build_net(10.0, 70.0, 4, 1, t0_hi=25.0),
                        10.0, 70.0, 4)
    model.breakpoints = (25.0,)
    return model


def build_leaky() -> BrokenModel:
    """Non-conservative arc: t4 drops the monitoring token."""
    return BrokenModel(_build_net(10.0, 70.0, 4, 1, leak_t4=True),
                       10.0, 70.0, 4)


def build_no_floor() -> BrokenModel:
    """Missing t7: Idle at nalloc == n_min deadlocks."""
    return BrokenModel(_build_net(10.0, 70.0, 4, 1, include_t7=False),
                       10.0, 70.0, 4)


def build_overshoot() -> BrokenModel:
    """t5 bound too high: the core count can exceed n_total."""
    return BrokenModel(_build_net(10.0, 70.0, 4, 1, t5_cap=6),
                       10.0, 70.0, 4)


#: default fixture for ``--fixture`` without a function suffix
build = build_gap
