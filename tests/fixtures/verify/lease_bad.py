"""Known-bad twin for the lease typestate rules.

Each function violates exactly one rule (tests run them with a
restricted rule set, so the confinement rule does not drown the flow
rules).  Expected findings:

* ``grow``      -> flow:lease-rollback (acquire in a loop, no handler)
* ``split``     -> flow:lease-rollback (two acquire sites, second can
                   escape while the first is held)
* ``teardown``  -> flow:lease-unpaired (early return skips the release)
* every ``inventory.*`` / ``cpuset.*`` call -> flow:lease-outside-actuator
  when the file is placed outside the mechanism's home modules
"""


def grow(inventory, tenant, cores):
    for core in cores:
        inventory.acquire(tenant, core)


def split(inventory, tenant, first, second):
    inventory.acquire(tenant, first)
    inventory.acquire(tenant, second)


def teardown(inventory, tenant, core, fast):
    inventory.acquire(tenant, core)
    if fast:
        return None
    inventory.release(tenant, core)
    return core


def remask(cpuset, cores):
    cpuset.set_mask(cores)
