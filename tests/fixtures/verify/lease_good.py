"""Clean twin of ``lease_bad.py``: same shapes, protocol respected.

* ``grow``     rolls a partial acquisition back in the handler;
* ``split``    likewise, with two discrete sites;
* ``teardown`` releases on every normal path (try/finally).

None of the lease flow rules may fire on this file.
"""


def grow(inventory, tenant, cores):
    acquired = []
    try:
        for core in cores:
            inventory.acquire(tenant, core)
            acquired.append(core)
    except Exception:
        for core in reversed(acquired):
            inventory.release(tenant, core)
        raise
    return acquired


def split(inventory, tenant, first, second):
    inventory.acquire(tenant, first)
    try:
        inventory.acquire(tenant, second)
    except Exception:
        inventory.release(tenant, first)
        raise


def teardown(inventory, tenant, core, fast):
    inventory.acquire(tenant, core)
    try:
        result = None if fast else core
    finally:
        inventory.release(tenant, core)
    return result
