"""Known-bad twin for flow:set-iteration (run in a strict zone).

Expected findings, one per function:

* ``emit``     -> for-loop over a set-annotated parameter
* ``snapshot`` -> list() over a set literal
* ``masks``    -> ordered comprehension over a set-typed attribute
* ``drain``    -> iteration over set algebra (union of two sets)
"""


def emit(trace, cores: set):
    for core in cores:
        trace.append(core)


def snapshot():
    free = {1, 2, 3}
    return list(free)


class Planner:
    def __init__(self):
        self.own = set()

    def masks(self):
        return [core + 1 for core in self.own]

    def drain(self, extra: set):
        merged = self.own | extra
        out = []
        for core in merged:
            out.append(core)
        return out
