"""Clean twin of ``ordering_bad.py``: same shapes, deterministic order.

Sets are sorted before any order-sensitive use; producing another
unordered set from a set (the SetComp in ``masks``) is allowed.
"""


def emit(trace, cores: set):
    for core in sorted(cores):
        trace.append(core)


def snapshot():
    free = {1, 2, 3}
    return sorted(free)


class Planner:
    def __init__(self):
        self.own = set()

    def masks(self):
        return {core + 1 for core in self.own}

    def drain(self, extra: set):
        out = []
        for core in sorted(self.own | extra):
            out.append(core)
        return out
