"""Known-bad twin for the spawn-safety rules (run in a spawn zone).

Expected findings:

* ``_pending``                  -> flow:spawn-global-mutable
* ``Telemetry.attach``          -> flow:spawn-unpicklable (lambda to a
                                   subscribe sink)
* ``Telemetry.arm``             -> flow:spawn-unpicklable (nested
                                   function stored into an attribute)
* ``Telemetry.spawn``           -> flow:spawn-unpicklable (lambda as an
                                   ``on_exit=`` keyword)
* ``HOOK = lambda`` is fine (CONSTANT_CASE), but ``fallback`` below it
  -> flow:spawn-unpicklable (lambda bound to a module-level name)
"""

_pending = []


def fanout(pool, items):
    return [pool.submit(item) for item in items]


fallback = lambda result: result  # noqa: E731


class Telemetry:
    def attach(self, cpuset):
        cpuset.subscribe(lambda added, removed: None)

    def arm(self, pool):
        def on_done(result):
            return result

        self.callback = on_done

    def spawn(self, scheduler):
        scheduler.spawn_thread("worker", on_exit=lambda t: None)
