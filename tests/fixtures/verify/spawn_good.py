"""Clean twin of ``spawn_bad.py``: everything crossing the boundary
pickles by qualified name.

* module state is CONSTANT_CASE (shared by design);
* callbacks are module-level classes with ``__call__``;
* the only lambda is a transient ``key=`` that never enters a graph.
"""

_REGISTRY = {}


class MaskCounter:
    """Picklable subscribe callback (module-level, ``__call__``)."""

    def __init__(self):
        self.changes = 0

    def __call__(self, added, removed):
        self.changes += len(added) + len(removed)


class Telemetry:
    def attach(self, cpuset):
        self.counter = MaskCounter()
        cpuset.subscribe(self.counter)

    def pick(self, threads):
        return sorted(threads, key=lambda thread: thread.name)
