"""Analysis helpers: metrics and table rendering."""

import math

import pytest

from repro.analysis.metrics import geometric_mean, ratio_reduction, speedup
from repro.analysis.report import render_table
from repro.errors import ReproError


class TestMetrics:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 2.0) == 0.5

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            speedup(0, 1)
        with pytest.raises(ReproError):
            speedup(1, -1)

    def test_ratio_reduction(self):
        assert ratio_reduction(0.8, 0.2) == pytest.approx(4.0)
        assert ratio_reduction(0.5, 0.0) == math.inf

    def test_ratio_reduction_rejects_negative(self):
        with pytest.raises(ReproError):
            ratio_reduction(-0.1, 0.2)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([3]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_bad_input(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        table = render_table(["name", "value"],
                             [["alpha", 1.5], ["b", 22.25]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        table = render_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_numbers_right_aligned_text_left(self):
        table = render_table(["mode", "n"], [["verylongmode", 7]])
        row = table.splitlines()[-1]
        assert row.startswith("verylongmode")
        assert row.endswith("7")

    def test_float_formatting(self):
        table = render_table(["v"], [[1234.5], [0.1234], [12.345], [0.0]])
        body = table.splitlines()[2:]
        assert body[0].strip() == "1,234"   # thousands (rounded)
        assert body[1].strip() == "0.123"
        assert body[2].strip() == "12.35"
        assert body[3].strip() == "0"

    def test_empty_rows(self):
        table = render_table(["a"], [])
        assert len(table.splitlines()) == 2
