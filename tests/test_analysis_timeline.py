"""ASCII timeline rendering."""

import pytest

from repro.analysis.timeline import (render_allocation_staircase,
                                     render_core_map, render_node_map)
from repro.errors import ReproError
from repro.experiments.fig05_migration_os import ThreadTimeline


def timeline(tid, placements):
    t = ThreadTimeline(tid)
    t.placements.extend(placements)
    return t


def test_node_map_one_row_per_thread():
    timelines = [
        timeline(1, [(0.0, 0, 0), (0.5, 4, 1)]),
        timeline(2, [(0.0, 8, 2)]),
    ]
    text = render_node_map(timelines, width=10)
    lines = text.splitlines()
    assert len(lines) == 3  # header + 2 threads
    assert lines[1].startswith("T1")
    assert "1" in lines[1]          # thread 1 ends on node 1
    assert lines[2].rstrip().endswith("2" * 1) or "2" in lines[2]


def test_node_map_carries_placement_forward():
    text = render_node_map([timeline(1, [(0.0, 0, 0), (1.0, 4, 1)])],
                           width=10)
    row = text.splitlines()[1].split(None, 1)[1]
    # first half node 0, second half node 1
    assert row[2] == "0"
    assert row[-1] == "1"


def test_core_map_uses_hex():
    text = render_core_map([timeline(1, [(0.0, 15, 3)])], width=4)
    assert "f" in text.splitlines()[1]


def test_empty_timelines():
    assert "no placements" in render_node_map([])
    assert "no placements" in render_core_map([])


def test_title_prepended():
    text = render_node_map([timeline(1, [(0.0, 0, 0)])], width=4,
                           title="MAP")
    assert text.splitlines()[0] == "MAP"


def test_staircase_renders_bars():
    transitions = [(0.02 * i, "t2-Stable-t3", 40.0, 4 + i)
                   for i in range(8)]
    text = render_allocation_staircase(transitions, n_total=16)
    lines = text.splitlines()
    assert len(lines) == 8
    bars = [line.split("|")[1] for line in lines]
    assert bars[0].count("#") == 4
    assert bars[-1].count("#") == 11
    assert all(len(bar) == 16 for bar in bars)


def test_staircase_empty():
    assert "no transitions" in render_allocation_staircase([])


def test_bucketise_rejects_empty_span():
    from repro.analysis.timeline import _bucketise
    with pytest.raises(ReproError):
        _bucketise([], 1.0, 1.0, 10)


def test_bucketise_rejects_inverted_span():
    from repro.analysis.timeline import _bucketise
    with pytest.raises(ReproError):
        _bucketise([], 2.0, 1.0, 10)


def test_bucketise_empty_placement_stream():
    from repro.analysis.timeline import _bucketise
    assert _bucketise([], 0.0, 1.0, 5) == [None] * 5


def test_bucketise_single_bucket_width():
    from repro.analysis.timeline import _bucketise
    cells = _bucketise([(0.1, 3), (0.9, 7)], 0.0, 1.0, 1)
    # one column: the latest placement inside the span wins
    assert cells == [7]


def test_bucketise_placement_before_t_start_carries_forward():
    from repro.analysis.timeline import _bucketise
    # a thread placed before the window opened is still *somewhere*
    # during it: the stale placement must fill every bucket, not None
    cells = _bucketise([(-0.5, 2)], 0.0, 1.0, 4)
    assert cells == [2, 2, 2, 2]


def test_bucketise_carry_forward_after_last_event():
    from repro.analysis.timeline import _bucketise
    cells = _bucketise([(0.0, 1)], 0.0, 1.0, 4)
    assert cells == [1, 1, 1, 1]


def test_node_map_single_instant_pads_span():
    # all placements at one instant: the degenerate span must not raise
    text = render_node_map([timeline(1, [(0.25, 0, 3)])], width=6)
    row = text.splitlines()[1].split(None, 1)[1]
    assert "3" in row


def test_staircase_subsamples_to_width():
    transitions = [(0.01 * i, "t2-Stable-t3", 40.0, 4)
                   for i in range(200)]
    text = render_allocation_staircase(transitions, width=50)
    assert len(text.splitlines()) <= 100
