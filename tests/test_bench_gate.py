"""Regression-gate behaviour: retry-on-regression semantics.

The bench gate re-measures entries that trip the tolerance before
failing (``retry_regressions``): a transient host-load burst clears on
a retry, a real code regression reproduces on every one.  These tests
pin the mechanics with a stubbed ``_bench_one`` so no experiment runs.
"""

import repro.runner.bench as bench


def _snapshot(rev: str, seconds: float) -> bench.SweepSnapshot:
    snap = bench.SweepSnapshot(rev=rev, recorded_at=1.0,
                               calibration_seconds=0.2)
    snap.experiments["fig7"] = (seconds, seconds / 0.2)
    snap.events["fig7"] = 733
    return snap


def test_transient_regression_clears_on_retry(monkeypatch):
    baseline = _snapshot("base", 0.05)
    report = _snapshot("cur", 0.10)  # 2x slow: -50% events/s
    calls = []

    def fake_bench_one(name, fn, kwargs, repeats=1):
        calls.append((name, repeats))
        return name, 0.05, 733

    monkeypatch.setattr(bench, "_bench_one", fake_bench_one)
    monkeypatch.setattr(bench, "_calibrate", lambda: 0.2)
    retried = bench.retry_regressions(report, baseline,
                                      tolerance=0.25, rounds=2)
    # one re-measurement restores parity; the second round sees a
    # clean compare and stops without running anything
    assert retried == 1
    assert calls == [("fig7", bench.TIMING_REPEATS)]
    assert report.experiments["fig7"] == (0.05, 0.25)
    assert report.events["fig7"] == 733
    _, regressions = report.compare(baseline, tolerance=0.25)
    assert regressions == []


def test_real_regression_survives_every_retry(monkeypatch):
    baseline = _snapshot("base", 0.05)
    report = _snapshot("cur", 0.10)

    def fake_bench_one(name, fn, kwargs, repeats=1):
        return name, 0.11, 733  # reproduces slow (and a bit noisier)

    monkeypatch.setattr(bench, "_bench_one", fake_bench_one)
    monkeypatch.setattr(bench, "_calibrate", lambda: 0.2)
    retried = bench.retry_regressions(report, baseline,
                                      tolerance=0.25, rounds=2)
    assert retried == 2
    # the slower retry never overwrites the recorded minimum
    assert report.experiments["fig7"] == (0.10, 0.5)
    _, regressions = report.compare(baseline, tolerance=0.25)
    assert len(regressions) == 1 and regressions[0].startswith("fig7:")


def test_retry_rescales_wall_by_fresh_calibration(monkeypatch):
    baseline = _snapshot("base", 0.05)
    report = _snapshot("cur", 0.10)

    def fake_bench_one(name, fn, kwargs, repeats=1):
        return name, 0.11, 733  # still slow on the wall clock...

    # ...but the retry-time calibration is 2x slow as well: the load
    # persisted through the retry, so the ratio cancels and the entry
    # is recorded at 0.11 * (0.2 / 0.4) = 0.055s in report units
    monkeypatch.setattr(bench, "_bench_one", fake_bench_one)
    monkeypatch.setattr(bench, "_calibrate", lambda: 0.4)
    retried = bench.retry_regressions(report, baseline,
                                      tolerance=0.25, rounds=2)
    assert retried == 1
    seconds, score = report.experiments["fig7"]
    assert abs(seconds - 0.055) < 1e-12
    assert abs(score - 0.275) < 1e-12
    _, regressions = report.compare(baseline, tolerance=0.25)
    assert regressions == []


def test_cached_entries_are_never_retried(monkeypatch):
    baseline = _snapshot("base", 0.05)
    report = _snapshot("cur", 0.10)
    report.cached.append("fig7")

    def fake_bench_one(name, fn, kwargs, repeats=1):  # pragma: no cover
        raise AssertionError("cache-replayed entry must not re-run")

    monkeypatch.setattr(bench, "_bench_one", fake_bench_one)
    assert bench.retry_regressions(report, baseline,
                                   tolerance=0.25, rounds=2) == 0
