"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_every_experiment_is_registered():
    expected = {"fig4", "fig5", "fig6", "fig7", "fig13", "fig14",
                "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
                "overhead", "sla", "oltp", "ablation-thresholds",
                "ablation-strategies", "ablation-parallelism",
                "predicate-aware", "morsel", "ablation-autonuma"}
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_command_prints_table(capsys):
    code = main(["run", "fig6", "--scale", "0.004",
                 "--sim-scale", "0.125"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Tomograph" in out
    assert "algebra.thetasubselect" in out


def test_run_rejects_inapplicable_option(capsys):
    code = main(["run", "fig6", "--users", "1,2"])
    assert code == 2
    assert "does not accept" in capsys.readouterr().err


def test_run_parses_users_tuple(capsys):
    code = main(["run", "fig13", "--users", "1,2", "--repetitions", "1",
                 "--scale", "0.004", "--sim-scale", "0.125"])
    assert code == 0
    out = capsys.readouterr().out
    assert "thetasubselect vs concurrency" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_compare_command(capsys):
    code = main(["compare", "--workload", "q6", "--clients", "2",
                 "--repetitions", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "monetdb/OS" in out
    assert "monetdb/adaptive" in out
