"""The command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BROKEN_MODELS = str(FIXTURES / "broken_models.py")


def test_every_experiment_is_registered():
    expected = {"fig4", "fig5", "fig6", "fig7", "fig13", "fig14",
                "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
                "overhead", "sla", "oltp", "ablation-thresholds",
                "ablation-strategies", "ablation-parallelism",
                "predicate-aware", "morsel", "ablation-autonuma"}
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_command_prints_table(capsys):
    code = main(["run", "fig6", "--scale", "0.004",
                 "--sim-scale", "0.125"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Tomograph" in out
    assert "algebra.thetasubselect" in out


def test_run_rejects_inapplicable_option(capsys):
    code = main(["run", "fig6", "--users", "1,2"])
    assert code == 2
    assert "does not accept" in capsys.readouterr().err


def test_run_parses_users_tuple(capsys):
    code = main(["run", "fig13", "--users", "1,2", "--repetitions", "1",
                 "--scale", "0.004", "--sim-scale", "0.125"])
    assert code == 0
    out = capsys.readouterr().out
    assert "thetasubselect vs concurrency" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_compare_command(capsys):
    code = main(["compare", "--workload", "q6", "--clients", "2",
                 "--repetitions", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "monetdb/OS" in out
    assert "monetdb/adaptive" in out


# ------------------------------------------------------------------
# the verify subcommand
# ------------------------------------------------------------------

def test_verify_clean_run_exits_zero(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "verification passed" in out
    for check in ("guard-coverage", "reachability", "p-invariant",
                  "lint:wall-clock"):
        assert check in out


def test_verify_json_schema(capsys):
    assert main(["verify", "--json", "--strategy", "cpu_load",
                 "--no-lint"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    (report,) = document["reports"]
    assert set(report) == {"subject", "ok", "checks", "findings"}
    assert "guard-coverage" in report["checks"]
    assert report["findings"] == []


def test_verify_guard_gap_fixture_fails_naming_property(capsys):
    code = main(["verify", "--no-lint",
                 "--fixture", f"{BROKEN_MODELS}:build_gap"])
    assert code == 1
    out = capsys.readouterr().out
    assert "guard-coverage" in out and "gap" in out
    assert "verification FAILED" in out


def test_verify_nonconservative_fixture_fails(capsys):
    code = main(["verify", "--no-lint", "--json",
                 "--fixture", f"{BROKEN_MODELS}:build_leaky"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    checks = {f["check"] for r in document["reports"]
              for f in r["findings"]}
    assert "p-invariant" in checks


def test_verify_injected_wall_clock_fails(tmp_path, capsys):
    core = tmp_path / "core"
    core.mkdir()
    core.joinpath("clock.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    code = main(["verify", "--no-model", "--src", str(tmp_path)])
    assert code == 1
    assert "lint:wall-clock" in capsys.readouterr().out


def test_verify_clean_src_tree_passes(tmp_path):
    tmp_path.joinpath("ok.py").write_text("x = 1\n")
    assert main(["verify", "--no-model", "--src", str(tmp_path)]) == 0


def test_verify_inverted_thresholds_reported_not_crashed(capsys):
    code = main(["verify", "--no-lint", "--strategy", "cpu_load",
                 "--th-min", "70", "--th-max", "10"])
    assert code == 1
    assert "thresholds inverted" in capsys.readouterr().out


def test_verify_missing_fixture_is_an_error(capsys):
    assert main(["verify", "--fixture", "/does/not/exist.py"]) == 2
    assert "not found" in capsys.readouterr().err
