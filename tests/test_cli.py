"""The command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BROKEN_MODELS = str(FIXTURES / "broken_models.py")


def test_every_experiment_is_registered():
    expected = {"fig4", "fig5", "fig6", "fig7", "fig13", "fig14",
                "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
                "overhead", "sla", "oltp", "multi-tenant",
                "ablation-thresholds", "ablation-strategies",
                "ablation-parallelism", "predicate-aware", "morsel",
                "ablation-autonuma"}
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_command_prints_table(capsys):
    code = main(["run", "fig6", "--scale", "0.004",
                 "--sim-scale", "0.125"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Tomograph" in out
    assert "algebra.thetasubselect" in out


def test_run_rejects_inapplicable_option(capsys):
    code = main(["run", "fig6", "--users", "1,2"])
    assert code == 2
    assert "does not accept" in capsys.readouterr().err


def test_run_parses_users_tuple(capsys):
    code = main(["run", "fig13", "--users", "1,2", "--repetitions", "1",
                 "--scale", "0.004", "--sim-scale", "0.125"])
    assert code == 0
    out = capsys.readouterr().out
    assert "thetasubselect vs concurrency" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_compare_command(capsys):
    code = main(["compare", "--workload", "q6", "--clients", "2",
                 "--repetitions", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "monetdb/OS" in out
    assert "monetdb/adaptive" in out


# ------------------------------------------------------------------
# telemetry: run --telemetry, stats, explain
# ------------------------------------------------------------------

@pytest.fixture(scope="module")
def telemetry_dir(tmp_path_factory):
    """One recorded fig7 run shared by the telemetry CLI tests."""
    out = tmp_path_factory.mktemp("telemetry") / "fig7"
    code = main(["run", "fig7", "--telemetry", str(out),
                 "--repetitions", "1", "--scale", "0.002",
                 "--sim-scale", "0.05"])
    assert code == 0
    return out


def test_run_telemetry_exports_all_formats(telemetry_dir):
    for name in ("metrics.prom", "metrics.jsonl", "trace.json",
                 "decisions.jsonl"):
        assert (telemetry_dir / name).exists()
    document = json.loads((telemetry_dir / "trace.json").read_text())
    assert document["traceEvents"]
    phases = {e["name"] for e in document["traceEvents"]}
    assert {"controller.tick", "controller.sample",
            "controller.evaluate", "controller.fire",
            "controller.apply"} <= phases


def test_run_telemetry_uninstalls_recorder(telemetry_dir):
    from repro.obs import NULL_RECORDER, current_recorder
    assert current_recorder() is NULL_RECORDER


def test_stats_command(telemetry_dir, capsys):
    assert main(["stats", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "controller.ticks" in out
    assert "scheduler.dispatches" in out


def test_stats_tenant_filter(telemetry_dir, capsys):
    assert main(["stats", str(telemetry_dir), "--tenant", "db"]) == 0
    out = capsys.readouterr().out
    assert "(tenant db)" in out
    assert "controller.ticks" in out
    # machine-wide metrics are filtered out with the tenant lens on
    assert "scheduler.dispatches" not in out
    assert main(["stats", str(telemetry_dir),
                 "--tenant", "nobody"]) == 0
    assert "no metrics recorded" in capsys.readouterr().out


def test_stats_missing_path_is_an_error(tmp_path, capsys):
    assert main(["stats", str(tmp_path)]) == 2
    assert "no metrics snapshot" in capsys.readouterr().err


def test_explain_renders_causal_chains(telemetry_dir, capsys):
    assert main(["explain", str(telemetry_dir), "--action-only"]) == 0
    out = capsys.readouterr().out
    assert "guard:" in out
    assert "th_max" in out or "th_min" in out
    assert "rule" in out and "condition" in out and "action" in out


def test_explain_tick_filter(telemetry_dir, capsys):
    assert main(["explain", str(telemetry_dir), "--tick", "0"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("tick 0 ")
    assert main(["explain", str(telemetry_dir), "--tick", "9999"]) == 2
    assert "no decision" in capsys.readouterr().err


def test_explain_tenant_filter(telemetry_dir, capsys):
    # the recorded run is the single default tenant: "db" keeps all
    assert main(["explain", str(telemetry_dir), "--tenant", "db",
                 "--limit", "1"]) == 0
    assert "tick" in capsys.readouterr().out
    assert main(["explain", str(telemetry_dir),
                 "--tenant", "nobody"]) == 0
    assert "no matching decisions" in capsys.readouterr().out


def test_explain_limit_elides(telemetry_dir, capsys):
    assert main(["explain", str(telemetry_dir), "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "elided" in out


def test_explain_json_output(telemetry_dir, capsys):
    assert main(["explain", str(telemetry_dir), "--json",
                 "--limit", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert 1 <= len(lines) <= 2
    record = json.loads(lines[0])
    assert {"tick", "entry_guard", "exit_guard", "sample"} <= set(record)


def test_explain_missing_path_is_an_error(tmp_path, capsys):
    assert main(["explain", str(tmp_path)]) == 2
    assert "no decision log" in capsys.readouterr().err


# ------------------------------------------------------------------
# the monitor subcommand
# ------------------------------------------------------------------

def test_monitor_runs_fig13_and_streams(tmp_path, capsys):
    stream = tmp_path / "stream.jsonl"
    code = main(["monitor", "fig13", "--users", "1,2",
                 "--repetitions", "1", "--scale", "0.004",
                 "--sim-scale", "0.125", "--port", "0",
                 "--no-dashboard", "--jsonl", str(stream),
                 "--slo-latency-p95", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "serving http://127.0.0.1:" in out
    assert "thetasubselect vs concurrency" in out
    assert "stream:" in out
    from repro.obs.serve import load_stream
    kinds = {entry["kind"] for entry in load_stream(stream)}
    assert {"sample", "decision", "window"} <= kinds


def test_monitor_uninstalls_the_live_pipeline(capsys):
    from repro.obs import NULL_RECORDER, current_recorder
    from repro.obs.live import live_bus
    code = main(["monitor", "fig7", "--repetitions", "1",
                 "--scale", "0.002", "--sim-scale", "0.05",
                 "--port", "0", "--no-dashboard"])
    assert code == 0
    assert live_bus() is None
    assert current_recorder() is NULL_RECORDER


def test_monitor_rejects_inapplicable_option(capsys):
    code = main(["monitor", "fig6", "--users", "1,2", "--port", "0",
                 "--no-dashboard"])
    assert code == 2
    assert "does not accept" in capsys.readouterr().err


def test_monitor_rejects_bad_rules_file(tmp_path, capsys):
    path = tmp_path / "rules.json"
    path.write_text('[{"name": "x", "series": "s", "oops": 1}]')
    code = main(["monitor", "fig7", "--rules", str(path),
                 "--port", "0", "--no-dashboard"])
    assert code == 2
    assert "unknown keys" in capsys.readouterr().err


# ------------------------------------------------------------------
# the verify subcommand
# ------------------------------------------------------------------

def test_verify_clean_run_exits_zero(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "verification passed" in out
    for check in ("guard-coverage", "reachability", "p-invariant",
                  "lint:wall-clock"):
        assert check in out


def test_verify_json_schema(capsys):
    assert main(["verify", "--json", "--strategy", "cpu_load",
                 "--no-lint"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    (report,) = document["reports"]
    assert set(report) == {"subject", "ok", "checks", "findings"}
    assert "guard-coverage" in report["checks"]
    assert report["findings"] == []


def test_verify_guard_gap_fixture_fails_naming_property(capsys):
    code = main(["verify", "--no-lint",
                 "--fixture", f"{BROKEN_MODELS}:build_gap"])
    assert code == 1
    out = capsys.readouterr().out
    assert "guard-coverage" in out and "gap" in out
    assert "verification FAILED" in out


def test_verify_nonconservative_fixture_fails(capsys):
    code = main(["verify", "--no-lint", "--json",
                 "--fixture", f"{BROKEN_MODELS}:build_leaky"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    checks = {f["check"] for r in document["reports"]
              for f in r["findings"]}
    assert "p-invariant" in checks


def test_verify_injected_wall_clock_fails(tmp_path, capsys):
    core = tmp_path / "core"
    core.mkdir()
    core.joinpath("clock.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    code = main(["verify", "--no-model", "--src", str(tmp_path)])
    assert code == 1
    assert "lint:wall-clock" in capsys.readouterr().out


def test_verify_clean_src_tree_passes(tmp_path):
    tmp_path.joinpath("ok.py").write_text("x = 1\n")
    assert main(["verify", "--no-model", "--src", str(tmp_path)]) == 0


def test_verify_inverted_thresholds_reported_not_crashed(capsys):
    code = main(["verify", "--no-lint", "--strategy", "cpu_load",
                 "--th-min", "70", "--th-max", "10"])
    assert code == 1
    assert "thresholds inverted" in capsys.readouterr().out


def test_verify_missing_fixture_is_an_error(capsys):
    assert main(["verify", "--fixture", "/does/not/exist.py"]) == 2
    assert "not found" in capsys.readouterr().err


def test_verify_lint_only_skips_model_checks(capsys):
    assert main(["verify", "--lint-only"]) == 0
    out = capsys.readouterr().out
    assert "guard-coverage" not in out
    assert "flow:lease-rollback" in out
    assert "verification passed" in out


def test_verify_all_runs_every_rule_family(capsys):
    assert main(["verify", "--all", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    checks = {check for report in document["reports"]
              for check in report["checks"]}
    assert {"guard-coverage", "lint:wall-clock",
            "flow:lease-rollback", "flow:spawn-unpicklable",
            "flow:set-iteration"} <= checks


def test_verify_list_rules_prints_catalog(capsys):
    assert main(["verify", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "flow:lease-rollback" in out
    assert "flow:set-iteration" in out
    assert "fix:" in out


def test_verify_unknown_rule_id_is_an_error(capsys):
    assert main(["verify", "--rules", "flow:no-such-rule"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_verify_rules_subset(capsys):
    assert main(["verify", "--lint-only", "--json",
                 "--rules", "lint:wall-clock,lint:unseeded-random"]) == 0
    document = json.loads(capsys.readouterr().out)
    (report,) = document["reports"]
    assert set(report["checks"]) == {"lint:wall-clock",
                                     "lint:unseeded-random"}


def test_verify_files_runs_changed_files_only(tmp_path, capsys):
    sim = tmp_path / "sim"
    sim.mkdir()
    bad = sim / "bad.py"
    bad.write_text("import time\nnow = time.time()\n")
    (sim / "also_bad_but_not_given.py").write_text(
        "import time\nnow = time.time()\n")
    code = main(["verify", "--src", str(tmp_path),
                 "--files", str(bad)])
    assert code == 1
    out = capsys.readouterr().out
    assert out.count("!!") == 1
    assert "lint:wall-clock" in out
    assert "sim/bad.py" in out


def test_verify_baseline_demotes_then_gates(tmp_path, capsys):
    sim = tmp_path / "sim"
    sim.mkdir()
    bad = sim / "bad.py"
    bad.write_text("import time\nnow = time.time()\n")
    baseline = tmp_path / "baseline.json"

    assert main(["verify", "--src", str(tmp_path),
                 "--write-baseline", str(baseline)]) == 0
    assert "wrote 1 baseline entry" in capsys.readouterr().out

    # grandfathered: visible as a warning, exit code clean
    assert main(["verify", "--lint-only", "--src", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    assert "[grandfathered]" in capsys.readouterr().out

    # a new finding still fails even with the baseline applied
    bad.write_text("import time\nnow = time.time()\n"
                   "import random\nx = random.random()\n")
    assert main(["verify", "--lint-only", "--src", str(tmp_path),
                 "--baseline", str(baseline)]) == 1
    assert "lint:unseeded-random" in capsys.readouterr().out

    # finding fixed: the baseline entry is reported stale
    bad.write_text("x = 1\n")
    assert main(["verify", "--lint-only", "--src", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    assert "baseline:stale-entry" in capsys.readouterr().out
