"""Configuration dataclasses: defaults, derived values, validation."""

import pytest

from repro.config import (ControllerConfig, EngineConfig, ExperimentConfig,
                          MachineConfig, SchedulerConfig)
from repro.errors import ConfigError


class TestMachineConfig:
    def test_defaults_match_the_paper_testbed(self):
        config = MachineConfig()
        assert config.n_sockets == 4
        assert config.cores_per_socket == 4
        assert config.n_cores == 16
        assert config.frequency_hz == pytest.approx(2.8e9)

    def test_l3_pages_derived(self):
        config = MachineConfig()
        assert config.l3_pages == config.l3_bytes // config.page_bytes
        assert config.l3_pages >= 1

    def test_rejects_zero_sockets(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_sockets=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            MachineConfig(cores_per_socket=0)

    def test_rejects_non_power_of_two_pages(self):
        with pytest.raises(ConfigError):
            MachineConfig(page_bytes=3000)

    def test_rejects_l3_smaller_than_a_page(self):
        with pytest.raises(ConfigError):
            MachineConfig(l3_bytes=1024, page_bytes=65536)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigError):
            MachineConfig(frequency_hz=0)

    def test_rejects_bad_idle_fraction(self):
        with pytest.raises(ConfigError):
            MachineConfig(idle_power_fraction=1.5)


class TestSchedulerConfig:
    def test_defaults_positive(self):
        config = SchedulerConfig()
        assert config.quantum > 0
        assert config.balance_interval > 0
        assert config.imbalance_threshold >= 1

    @pytest.mark.parametrize("field,value", [
        ("quantum", 0), ("balance_interval", -1),
        ("imbalance_threshold", 0), ("migration_cost", -0.1),
        ("minor_fault_cost", -1e-9), ("context_switch_cost", -1e-9),
    ])
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ConfigError):
            SchedulerConfig(**{field: value})


class TestControllerConfig:
    def test_paper_defaults(self):
        config = ControllerConfig()
        assert config.initial_cores == 1
        assert config.min_cores == 1

    def test_thresholds_live_on_the_strategy(self):
        # one source of truth: the strategy owns th_min/th_max and the
        # config deliberately has no such fields to fall out of sync with
        assert not hasattr(ControllerConfig(), "th_min")
        assert not hasattr(ControllerConfig(), "th_max")

    def test_rejects_zero_interval(self):
        with pytest.raises(ConfigError):
            ControllerConfig(interval=0)

    def test_rejects_initial_below_min(self):
        with pytest.raises(ConfigError):
            ControllerConfig(initial_cores=1, min_cores=2)


class TestEngineAndExperiment:
    def test_engine_defaults(self):
        config = EngineConfig()
        assert config.workers_follow_mask is True
        assert config.loader_node == 0
        assert config.numa_aware is False

    def test_experiment_bundles_defaults(self):
        config = ExperimentConfig()
        assert config.machine.n_cores == 16
        assert config.seed == 1729
