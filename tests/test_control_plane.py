"""The staged control plane: lifecycle, stages, decorators, tenancy.

Covers the seams the Sense -> Decide -> Plan -> Actuate decomposition
introduced: the controller's explicit lifecycle state machine, the
planner's foreign-core avoidance, the dry-run and cooldown actuator
decorators, and two controllers coexisting on one machine through the
core-lease inventory.
"""

import pytest

from repro.config import ControllerConfig
from repro.control import (CooldownActuator, CoreDelta, DryRunActuator,
                           ModePlanner, NO_CHANGE, single_step)
from repro.core.controller import ElasticController
from repro.core.modes import DenseMode, make_mode
from repro.core.strategies import CpuLoadStrategy
from repro.errors import AllocationError, LeaseError, SchedulerError
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.workitem import ListWorkSource, WorkItem


def make_controller(mode="dense", keepalive=False, tenant=None, os_=None,
                    **kwargs):
    os_ = os_ or OperatingSystem(small_numa())
    extra = {} if tenant is None else {"tenant": tenant}
    controller = ElasticController(
        os_, make_mode(mode, os_.topology), CpuLoadStrategy(),
        ControllerConfig(), keepalive=keepalive, **extra, **kwargs)
    return os_, controller


def scan_source(os_, n_pages=64, cycles=5e8, node=0):
    pages = list(os_.machine.memory.allocate(n_pages))
    for page in pages:
        os_.machine.memory.place(page, node)
    return ListWorkSource([WorkItem("scan", reads=pages, cycles=cycles)])


# ----------------------------------------------------------------------
# lifecycle state machine
# ----------------------------------------------------------------------

def test_lifecycle_progression():
    _, controller = make_controller()
    assert controller.lifecycle == "new"
    controller.start()
    assert controller.lifecycle == "running"
    controller.stop()
    assert controller.lifecycle == "stopped"


def test_kick_before_start_raises():
    _, controller = make_controller()
    with pytest.raises(AllocationError, match="before start"):
        controller.kick()


def test_kick_after_stop_is_a_noop():
    os_, controller = make_controller()
    controller.start()
    controller.stop()
    controller.kick()  # must not raise, must not re-arm
    os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    assert controller.ticks == 0


def test_start_after_stop_raises():
    _, controller = make_controller()
    controller.start()
    controller.stop()
    with pytest.raises(AllocationError, match="construct a new one"):
        controller.start()


def test_stop_is_idempotent():
    _, controller = make_controller()
    controller.start()
    controller.stop()
    controller.stop()
    assert controller.lifecycle == "stopped"


def test_keepalive_controller_stops_cleanly():
    os_, controller = make_controller(keepalive=True)
    controller.start()
    # no workload at all: keepalive keeps the tick loop armed
    os_.run(until=0.2)
    assert controller.ticks > 0
    ticked = controller.ticks
    controller.stop()
    # if stop did not disarm the loop this would never return
    os_.run_until_idle()
    assert controller.ticks == ticked


def test_kick_after_park_runs_one_more_pass():
    os_, controller = make_controller()
    controller.start()
    os_.spawn_thread(scan_source(os_, cycles=1e8))
    os_.run_until_idle()
    parked_at = controller.ticks
    controller.kick()
    os_.run_until_idle()
    # no threads alive: exactly one pass, then it parks again
    assert controller.ticks == parked_at + 1


# ----------------------------------------------------------------------
# stage pieces
# ----------------------------------------------------------------------

def test_core_delta_truthiness_and_first_core():
    assert not NO_CHANGE
    assert NO_CHANGE.first_core is None
    assert CoreDelta(allocate=(3,)).first_core == 3
    assert CoreDelta(release=(5,)).first_core == 5
    assert bool(CoreDelta(release=(5,)))


def test_single_step_rejects_multi_core_deltas():
    assert single_step(CoreDelta(allocate=(1,))).allocate == (1,)
    with pytest.raises(AllocationError, match="one core per tick"):
        single_step(CoreDelta(allocate=(1, 2)))
    with pytest.raises(AllocationError):
        single_step(CoreDelta(allocate=(1,), release=(2,)))


class _View:
    """A frozen CoreView for planner tests."""

    def __init__(self, own=(), foreign=()):
        self._own = frozenset(own)
        self._foreign = frozenset(foreign)

    def own(self):
        return self._own

    def foreign(self):
        return self._foreign


def test_planner_allocates_around_foreign_cores():
    os_ = OperatingSystem(small_numa())
    planner = ModePlanner(DenseMode(os_.topology),
                          _View(own={0}, foreign={1, 2}),
                          os_.topology.n_cores)
    delta = planner.plan("allocate")
    assert delta.allocate and delta.allocate[0] not in {0, 1, 2}


def test_planner_reports_no_change_when_starved():
    os_ = OperatingSystem(small_numa())
    n = os_.topology.n_cores
    planner = ModePlanner(DenseMode(os_.topology),
                          _View(own={0}, foreign=set(range(1, n))), n)
    assert planner.plan("allocate") is NO_CHANGE


def test_planner_initial_mask_skips_foreign():
    os_ = OperatingSystem(small_numa())
    planner = ModePlanner(DenseMode(os_.topology),
                          _View(foreign={0, 1}), os_.topology.n_cores)
    mask = planner.initial_mask(2)
    assert len(mask) == 2 and not set(mask) & {0, 1}


# ----------------------------------------------------------------------
# actuator decorators
# ----------------------------------------------------------------------

def test_dry_run_leaves_the_machine_untouched():
    os_, controller = make_controller(dry_run=True)
    n = os_.topology.n_cores
    controller.start()
    for _ in range(3):
        os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    # the real mask never shrank: threads ran on the whole machine
    assert len(os_.cpuset) == n
    assert not os_.inventory.is_governed("db")
    # but the what-if staircase evolved
    actuator = controller.actuator
    assert isinstance(actuator, DryRunActuator)
    assert actuator.planned
    assert controller.model.nalloc == controller.n_allocated


def test_dry_run_guards_virtual_holdings():
    os_ = OperatingSystem(small_numa())
    actuator = DryRunActuator(os_)
    actuator.seed([0])
    with pytest.raises(AllocationError):
        actuator.apply(CoreDelta(allocate=(0,)))
    with pytest.raises(AllocationError):
        actuator.apply(CoreDelta(release=(3,)))


def test_cooldown_suppresses_rapid_changes():
    os_, controller = make_controller(cooldown_ticks=4)
    controller.start()
    for _ in range(4):
        os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    actuator = controller.actuator
    assert isinstance(actuator, CooldownActuator)
    assert actuator.suppressed > 0
    # suppression never desynchronised the model from the holdings
    assert controller.model.nalloc == controller.n_allocated


def test_cooldown_zero_window_passes_everything_through():
    os_ = OperatingSystem(small_numa())
    inner = DryRunActuator(os_)
    actuator = CooldownActuator(inner, cooldown_ticks=0)
    actuator.seed([0])
    assert actuator.apply(CoreDelta(allocate=(1,)))
    assert actuator.apply(CoreDelta(allocate=(2,)))
    assert actuator.suppressed == 0
    assert actuator.n_allocated == 3


def test_cooldown_window_then_reissue():
    os_ = OperatingSystem(small_numa())
    inner = DryRunActuator(os_)
    actuator = CooldownActuator(inner, cooldown_ticks=2)
    actuator.seed([0])
    assert actuator.apply(CoreDelta(allocate=(1,)))          # tick 1
    assert not actuator.apply(CoreDelta(allocate=(2,)))      # tick 2: hot
    assert not actuator.apply(CoreDelta(allocate=(2,)))      # tick 3: hot
    assert actuator.apply(CoreDelta(allocate=(2,)))          # tick 4: cold
    assert actuator.suppressed == 2


# ----------------------------------------------------------------------
# two controllers, one machine
# ----------------------------------------------------------------------

def test_two_controllers_hold_disjoint_leases():
    os_ = OperatingSystem(small_numa())
    os_.create_tenant("left")
    os_.create_tenant("right")
    controllers = {}
    for tenant in ("left", "right"):
        _, controllers[tenant] = make_controller(os_=os_, tenant=tenant)
        controllers[tenant].start()
        os_.spawn_thread(scan_source(os_), tenant=tenant)
        os_.spawn_thread(scan_source(os_), tenant=tenant)
    os_.run_until_idle()
    left = os_.inventory.mask_of("left")
    right = os_.inventory.mask_of("right")
    assert left and right and not left & right
    os_.inventory.check()
    assert controllers["left"].ticks > 0
    assert controllers["right"].ticks > 0


def test_tenant_threads_stay_inside_the_tenant_mask():
    os_ = OperatingSystem(small_numa())
    cpuset = os_.create_tenant("pinned")
    os_.inventory.seed("pinned", [2, 3])
    for _ in range(3):
        os_.spawn_thread(scan_source(os_, cycles=2e8), tenant="pinned")
    for _ in range(12):
        os_.run(until=os_.now + 0.01)
        for thread in os_.scheduler.threads:
            if thread.tenant == "pinned" and thread.core is not None:
                assert thread.core in cpuset.allowed()
    os_.run_until_idle()


def test_duplicate_tenant_registration_raises():
    os_ = OperatingSystem(small_numa())
    os_.create_tenant("dup")
    with pytest.raises(LeaseError):
        os_.create_tenant("dup")


def test_duplicate_scheduler_mask_raises():
    os_ = OperatingSystem(small_numa())
    cpuset = os_.create_tenant("once")
    with pytest.raises(SchedulerError):
        os_.scheduler.register_tenant_mask("once", cpuset)


def test_second_controller_seeds_off_the_first():
    os_ = OperatingSystem(small_numa())
    os_.create_tenant("first")
    os_.create_tenant("second")
    _, one = make_controller(os_=os_, tenant="first")
    _, two = make_controller(os_=os_, tenant="second")
    one.start()
    two.start()
    first = os_.inventory.mask_of("first")
    second = os_.inventory.mask_of("second")
    assert len(first) == 1 and len(second) == 1
    assert not first & second
