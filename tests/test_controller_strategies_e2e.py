"""End-to-end controller behaviour under every strategy, plus scheduler
cost-charging details."""

import pytest

from repro.config import SchedulerConfig
from repro.core import ElasticController, make_mode
from repro.core.sla import SlaGovernor
from repro.core.strategies import CpuLoadStrategy
from repro.db.clients import repeat_stream
from repro.experiments.common import build_system
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.workitem import ListWorkSource, WorkItem
from repro.sim.tracing import TransitionRecord

SCALE = 0.004
SIM = 0.125


class TestStrategiesEndToEnd:
    def test_ht_imc_controller_grows_under_demand(self):
        sut = build_system(mode="adaptive", strategy="ht_imc",
                           scale=SCALE, sim_scale=SIM)
        sut.run_clients(4, repeat_stream("sel_45pct", 2))
        report = sut.controller.lonc.report()
        assert report.max_cores > 1

    def test_ht_imc_metric_values_are_ratios(self):
        sut = build_system(mode="adaptive", strategy="ht_imc",
                           scale=SCALE, sim_scale=SIM)
        sut.run_clients(4, repeat_stream("q6", 2))
        values = [r.value for r in sut.os.tracer.of(TransitionRecord)]
        assert values
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_useful_load_settles_below_busy_load(self):
        cores = {}
        for strategy in ("cpu_load", "useful_load"):
            sut = build_system(mode="adaptive", strategy=strategy,
                               scale=SCALE, sim_scale=SIM)
            sut.run_clients(8, repeat_stream("sel_45pct", 3))
            cores[strategy] = sut.controller.lonc.report().mean_cores
        assert cores["useful_load"] <= cores["cpu_load"] + 0.5

    def test_sla_governed_controller_end_to_end(self):
        sut = build_system(mode=None, scale=SCALE, sim_scale=SIM)
        governor = SlaGovernor(CpuLoadStrategy(), traffic_budget=1e7)
        controller = ElasticController(
            sut.os, make_mode("adaptive", sut.os.topology), governor)
        controller.start()
        sut.controller = controller
        sut.run_clients(8, repeat_stream("sel_45pct", 2))
        # the tiny budget forces violations and keeps the mask small
        assert governor.violations > 0
        assert controller.lonc.report().mean_cores < 8


class TestSchedulerCostCharging:
    def test_context_switch_cost_charged_on_thread_change(self):
        config = SchedulerConfig(context_switch_cost=5e-4)
        os_ = OperatingSystem(small_numa(), config)
        os_.cpuset.set_mask([0])
        # two threads alternating on one core: every dispatch switches
        for _ in range(2):
            os_.spawn_thread(ListWorkSource(
                [WorkItem("w", cycles=3e7)]))
        os_.run_until_idle()
        busy = os_.counters.get("busy_time", 0)
        useful = os_.counters.get("useful_time", 0)
        # the switch costs show up as busy-but-not-useful time
        assert busy - useful > 1e-3

    def test_huge_carryover_stall_does_not_livelock(self):
        """Regression: switch costs above the quantum used to produce
        zero-progress chunks under strict alternation."""
        config = SchedulerConfig(context_switch_cost=0.01,
                                 quantum=0.004)
        os_ = OperatingSystem(small_numa(), config)
        os_.cpuset.set_mask([0])
        threads = [os_.spawn_thread(ListWorkSource(
            [WorkItem("w", cycles=2e7)])) for _ in range(2)]
        os_.run(until=30.0)
        from repro.opsys.thread import ThreadState
        assert all(t.state is ThreadState.DONE for t in threads)

    def test_migration_cost_charged_to_moved_thread(self):
        config = SchedulerConfig(migration_cost=0.002,
                                 balance_interval=0.002)
        os_ = OperatingSystem(small_numa(), config)
        pages = list(os_.machine.memory.allocate(8))
        for page in pages:
            os_.machine.memory.place(page, 0)
        threads = [os_.spawn_thread(ListWorkSource(
            [WorkItem("w", reads=list(pages), cycles=1e7)]))
            for _ in range(8)]
        os_.run_until_idle()
        migrated = [t for t in threads if t.migrations > 0]
        assert migrated  # oversubscription forced moves
        # the fixed cost surfaces as busy-but-not-useful time
        busy = os_.counters.total("busy_time")
        useful = os_.counters.total("useful_time")
        assert busy > useful

    def test_minor_fault_cost_appears_in_elapsed(self):
        cheap = OperatingSystem(small_numa(),
                                SchedulerConfig(minor_fault_cost=0.0))
        costly = OperatingSystem(small_numa(),
                                 SchedulerConfig(minor_fault_cost=1e-3))
        for os_ in (cheap, costly):
            pages = list(os_.machine.memory.allocate(32))
            os_.spawn_thread(ListWorkSource(
                [WorkItem("w", reads=pages, cycles=1e6)]),
                pinned_core=0)
            os_.run_until_idle()
        assert costly.counters.get("busy_time", 0) \
            > cheap.counters.get("busy_time", 0) + 0.02


class TestModelSubnetSemantics:
    """The paper's Fig 10/11 walk-throughs as executable checks."""

    def test_fig10_idle_walkthrough(self):
        from repro.core.model import PerformanceModel

        model = PerformanceModel(10, 70, n_total=16, initial_cores=5)
        chain = model.run_cycle(8.0)   # u=8 with 5 cores provisioned
        assert chain.label == "t0-Idle-t4"
        assert model.nalloc == 4       # one of the 5 released

    def test_fig11_stable_walkthrough(self):
        from repro.core.model import PerformanceModel

        model = PerformanceModel(10, 70, n_total=16, initial_cores=3)
        chain = model.run_cycle(40.0)  # u=40 inside (10, 70)
        assert chain.label == "t2-Stable-t3"
        assert model.nalloc == 3

    def test_fired_log_alternates_entry_exit(self):
        from repro.core.model import PerformanceModel

        model = PerformanceModel(10, 70, n_total=16, initial_cores=2)
        for u in (99, 5, 40, 99, 99):
            model.run_cycle(u)
        log = model.net.fired_log
        entries = log[0::2]
        exits = log[1::2]
        assert all(t in ("t0", "t1", "t2") for t in entries)
        assert all(t in ("t3", "t4", "t5", "t6", "t7") for t in exits)
