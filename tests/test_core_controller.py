"""The elastic controller: pipeline behaviour on a live system."""

import pytest

from repro.config import ControllerConfig
from repro.core.controller import ElasticController
from repro.core.modes import make_mode
from repro.core.strategies import CpuLoadStrategy
from repro.errors import (AllocationError, ModelConfigurationError,
                          ReproError, VerificationError)
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.workitem import ListWorkSource, WorkItem
from repro.sim.tracing import ControllerTick, CoreAllocation


def make_controller(mode="dense", keepalive=False, **cfg):
    os_ = OperatingSystem(small_numa())
    controller = ElasticController(
        os_, make_mode(mode, os_.topology), CpuLoadStrategy(),
        ControllerConfig(**cfg) if cfg else None, keepalive=keepalive)
    return os_, controller


def scan_source(os_, n_pages=256, cycles=5e8):
    pages = list(os_.machine.memory.allocate(n_pages))
    for page in pages:
        os_.machine.memory.place(page, 0)
    return ListWorkSource([WorkItem("scan", reads=pages, cycles=cycles)])


def test_start_applies_initial_mask():
    os_, controller = make_controller()
    controller.start()
    assert os_.cpuset.allowed_sorted() == [0]
    assert controller.n_allocated == 1


def test_double_start_rejected():
    _, controller = make_controller()
    controller.start()
    with pytest.raises(AllocationError):
        controller.start()


def test_allocates_under_load():
    os_, controller = make_controller()
    controller.start()
    for _ in range(4):
        os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    report = controller.lonc.report()
    assert report.ticks > 0
    assert report.max_cores > 1
    allocations = [r for r in os_.tracer.of(CoreAllocation) if r.allocated]
    assert len(allocations) >= report.max_cores


def test_releases_when_idle():
    os_, controller = make_controller(keepalive=True)
    controller.start()
    os_.spawn_thread(scan_source(os_, cycles=2e9))
    # run past the workload plus an idle tail
    os_.run(until=2.0)
    controller.stop()
    os_.run_until_idle()
    assert os_.scheduler.live_threads() == 0
    assert controller.n_allocated == controller.config.min_cores
    releases = [r for r in os_.tracer.of(CoreAllocation)
                if not r.allocated]
    assert releases


def test_model_and_cpuset_stay_in_sync():
    os_, controller = make_controller()
    controller.start()
    for _ in range(3):
        os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    assert controller.model.nalloc == len(os_.cpuset)


def test_controller_parks_and_kicks():
    os_, controller = make_controller()
    controller.start()
    os_.spawn_thread(scan_source(os_, cycles=1e8))
    os_.run_until_idle()
    parked_at = controller.ticks
    # no workload: no new ticks even if time passes
    os_.sim.schedule(1.0, lambda: None)
    os_.run_until_idle()
    assert controller.ticks == parked_at
    # new workload + kick resumes ticking
    os_.spawn_thread(scan_source(os_, cycles=1e9))
    controller.kick()
    os_.run_until_idle()
    assert controller.ticks > parked_at


def test_stop_halts_ticking():
    os_, controller = make_controller()
    controller.start()
    controller.stop()
    os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    assert controller.ticks == 0


def test_ticks_emit_trace_records():
    os_, controller = make_controller()
    controller.start()
    os_.spawn_thread(scan_source(os_))
    os_.run_until_idle()
    ticks = os_.tracer.of(ControllerTick)
    assert len(ticks) == controller.ticks
    assert all(t.n_allocated >= 1 for t in ticks)


def test_adaptive_controller_allocates_near_data():
    os_, controller = make_controller(mode="adaptive")
    # all data on node 1 *before* the controller starts
    pages = list(os_.machine.memory.allocate(256))
    for page in pages:
        os_.machine.memory.place(page, 1)
    controller.start()
    os_.spawn_thread(ListWorkSource(
        [WorkItem("scan", reads=pages, cycles=8e8)]))
    os_.run_until_idle()
    allocations = [r for r in os_.tracer.of(CoreAllocation) if r.allocated]
    # the initial mask and the first growth land on the data's node
    assert allocations[0].node_id == 1
    grown = [r for r in allocations[1:3]]
    assert all(r.node_id == 1 for r in grown)


def test_run_pipeline_once_returns_chain():
    os_, controller = make_controller()
    controller.start()
    chain = controller.run_pipeline_once()
    assert chain.state in ("Idle", "Stable", "Overload")
    assert controller.ticks == 1


# ------------------------------------------------------------------
# static pre-flight (the verification layer)
# ------------------------------------------------------------------

class _InvertedStrategy(CpuLoadStrategy):
    """A custom strategy that bypasses constructor validation."""

    def __init__(self):
        self.th_min = 70.0
        self.th_max = 10.0


def test_inverted_thresholds_raise_verification_error_at_start():
    os_ = OperatingSystem(small_numa())
    controller = ElasticController(
        os_, make_mode("dense", os_.topology), _InvertedStrategy())
    assert controller.model is None
    with pytest.raises(ModelConfigurationError, match="inverted"):
        controller.start()


def test_min_cores_beyond_machine_raises_at_start():
    n_cores = small_numa().n_cores
    os_, controller = make_controller(
        min_cores=n_cores + 1, initial_cores=n_cores + 1)
    with pytest.raises(VerificationError, match="min_cores"):
        controller.start()


def test_preflight_reports_every_defect_at_once():
    os_ = OperatingSystem(small_numa())
    controller = ElasticController(
        os_, make_mode("dense", os_.topology), _InvertedStrategy(),
        ControllerConfig(min_cores=99, initial_cores=99))
    with pytest.raises(ModelConfigurationError) as excinfo:
        controller.start()
    message = str(excinfo.value)
    assert "inverted" in message and "min_cores" in message


def test_verify_model_preflight_passes_on_valid_config():
    os_ = OperatingSystem(small_numa())
    controller = ElasticController(
        os_, make_mode("dense", os_.topology), CpuLoadStrategy(),
        verify_model=True)
    controller.start()
    assert controller.n_allocated == 1


def test_verification_error_is_a_repro_error():
    assert issubclass(ModelConfigurationError, VerificationError)
    assert issubclass(VerificationError, ReproError)
