"""The predicate-aware worker sizer."""

import pytest

from repro.core.feedforward import PredicateAwareSizer
from repro.db.plan import QueryProfile
from repro.errors import ConfigError


def profile_with(input_bytes: float, cycles: float) -> QueryProfile:
    from repro.db.plan import StageProfile

    return QueryProfile(name="q", stages=[StageProfile("s",
                                                       cycles=cycles)],
                        result={}, result_rows=0,
                        input_sim_bytes=input_bytes)


def test_tiny_query_gets_one_worker():
    sizer = PredicateAwareSizer(bytes_per_worker=1e6,
                                cycles_per_worker=1e6)
    assert sizer.workers_for(profile_with(100.0, 100.0), 16) == 1


def test_footprint_drives_demand():
    sizer = PredicateAwareSizer(bytes_per_worker=1e6,
                                cycles_per_worker=1e12)
    assert sizer.workers_for(profile_with(3.5e6, 0.0), 16) == 4


def test_compute_drives_demand():
    sizer = PredicateAwareSizer(bytes_per_worker=1e12,
                                cycles_per_worker=1e7)
    assert sizer.workers_for(profile_with(0.0, 2.5e7), 16) == 3


def test_larger_estimate_wins():
    sizer = PredicateAwareSizer(bytes_per_worker=1e6,
                                cycles_per_worker=1e6)
    assert sizer.workers_for(profile_with(2e6, 9e6), 16) == 9


def test_clamped_to_visible():
    sizer = PredicateAwareSizer(bytes_per_worker=1.0,
                                cycles_per_worker=1.0)
    assert sizer.workers_for(profile_with(1e9, 1e9), 6) == 6


def test_validation():
    with pytest.raises(ConfigError):
        PredicateAwareSizer(bytes_per_worker=0)
    with pytest.raises(ConfigError):
        PredicateAwareSizer(cycles_per_worker=-1)
    sizer = PredicateAwareSizer()
    with pytest.raises(ConfigError):
        sizer.workers_for(profile_with(1, 1), 0)


def test_engine_integration(tiny_dataset):
    """A predicate-aware engine spawns fewer workers for tiny queries."""
    from repro.config import EngineConfig
    from repro.db.engine import MonetDBLike
    from repro.opsys.system import OperatingSystem
    from repro.workloads.tpch import build_queries

    os_ = OperatingSystem()
    eng = MonetDBLike(os_, tiny_dataset.catalog(),
                      tiny_dataset.byte_scale,
                      EngineConfig(predicate_aware=True, loader_node=0))
    eng.load()
    os_.counters.reset()
    eng.register_queries(build_queries(scale=tiny_dataset.scale))
    # q2 touches small dimension tables only -> few workers
    small = eng.submit("q2")
    # q1 scans all of lineitem -> full fan-out
    big = eng.submit("q1")
    assert len(small.workers) < len(big.workers)
    os_.run_until_idle()
    assert small.finished and big.finished
