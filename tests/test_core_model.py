"""The paper's 5-place / 8-transition performance model (Figs 8-11)."""

import pytest

from repro.core.model import PerformanceModel, TransitionChain
from repro.errors import PetriNetError


@pytest.fixture
def model():
    return PerformanceModel(th_min=10, th_max=70, n_total=16,
                            initial_cores=3)


def test_initial_marking(model):
    assert model.nalloc == 3
    marking = model.net.marking()
    assert marking["Checks"] == []
    assert marking["Idle"] == []
    assert marking["Stable"] == []
    assert marking["Overload"] == []


def test_overload_chain_allocates(model):
    """Paper Fig 9: u=99, 3 of 16 -> t1 then t5, nalloc 4."""
    chain = model.run_cycle(99.0)
    assert chain.label == "t1-Overload-t5"
    assert chain.action == "allocate"
    assert chain.nalloc_after == 4
    assert model.nalloc == 4


def test_overload_at_full_allocation_fires_t6():
    model = PerformanceModel(10, 70, n_total=4, initial_cores=4)
    chain = model.run_cycle(95.0)
    assert chain.label == "t1-Overload-t6"
    assert chain.action is None
    assert model.nalloc == 4


def test_idle_chain_releases():
    """Paper Fig 10: u=8 with 5 cores -> t0 then t4, one released."""
    model = PerformanceModel(10, 70, n_total=16, initial_cores=5)
    chain = model.run_cycle(8.0)
    assert chain.label == "t0-Idle-t4"
    assert chain.action == "release"
    assert model.nalloc == 4


def test_idle_at_minimum_fires_t7():
    model = PerformanceModel(10, 70, n_total=16, initial_cores=1)
    chain = model.run_cycle(2.0)
    assert chain.label == "t0-Idle-t7"
    assert chain.action is None
    assert model.nalloc == 1


def test_stable_chain_keeps_cores(model):
    """Paper Fig 11: u=40 -> t2 then t3, no change."""
    chain = model.run_cycle(40.0)
    assert chain.label == "t2-Stable-t3"
    assert chain.action is None
    assert model.nalloc == 3


def test_threshold_boundaries(model):
    assert model.run_cycle(10.0).state == "Idle"      # u <= thmin
    assert model.run_cycle(70.0).state == "Overload"  # u >= thmax
    assert model.run_cycle(10.01).state == "Stable"
    assert model.run_cycle(69.99).state == "Stable"


def test_token_returns_to_checks_every_cycle(model):
    for u in (5, 40, 99, 50, 0):
        model.run_cycle(u)
        assert len(model.net.place("Checks")) == 1
        assert model.net.total_tokens() == 2  # Checks + Provision


def test_cycle_sequence_tracks_staircase():
    model = PerformanceModel(10, 70, n_total=4, initial_cores=1)
    for _ in range(5):
        model.run_cycle(99.0)
    assert model.nalloc == 4  # capped at n_total
    labels = [c.label for c in model.chains]
    assert labels[:3] == ["t1-Overload-t5"] * 3
    assert labels[3] == "t1-Overload-t6"


def test_state_of_classifier(model):
    assert model.state_of(5) == "Idle"
    assert model.state_of(50) == "Stable"
    assert model.state_of(90) == "Overload"


def test_sync_nalloc(model):
    model.sync_nalloc(7)
    assert model.nalloc == 7
    with pytest.raises(PetriNetError):
        model.sync_nalloc(17)
    with pytest.raises(PetriNetError):
        model.sync_nalloc(0)


def test_bad_parameters_rejected():
    with pytest.raises(PetriNetError):
        PerformanceModel(70, 10, n_total=16)
    with pytest.raises(PetriNetError):
        PerformanceModel(10, 70, n_total=16, initial_cores=17)
    with pytest.raises(PetriNetError):
        PerformanceModel(10, 70, n_total=16, n_min=2, initial_cores=1)


def test_incidence_matches_paper_overload_subnet():
    """Fig 9's Pre entries: Checks-t1 (u), Provision-t1 (na),
    Overload-t5 (na)."""
    model = PerformanceModel(10, 70, n_total=16)
    pre, post, _ = model.net.incidence()
    assert pre[("Checks", "t1")] == "u"
    assert pre[("Provision", "t1")] == "na"
    assert pre[("Overload", "t5")] == "na"
    assert post[("Overload", "t1")] == "na"
    assert post[("Provision", "t5")] == "na"
    assert post[("Checks", "t5")] == "u"
    # the paper: "Overload-t6" is not in Pre... of the *fired* arcs; the
    # structural matrix still carries it
    assert pre[("Overload", "t6")] == "na"


def test_incidence_matches_paper_stable_subnet():
    model = PerformanceModel(10, 70, n_total=16)
    pre, post, incidence = model.net.incidence()
    assert pre[("Checks", "t2")] == "u"
    assert post[("Stable", "t2")] == "u"
    assert pre[("Stable", "t3")] == "u"
    assert post[("Checks", "t3")] == "u"
    assert incidence[("Checks", "t2")] == "-u"
    assert incidence[("Stable", "t2")] == "+u"


def test_chain_dataclass_fields():
    chain = TransitionChain(entry="t1", state="Overload", exit="t5",
                            metric=99.0, nalloc_after=4)
    assert chain.action == "allocate"
    assert chain.label == "t1-Overload-t5"
