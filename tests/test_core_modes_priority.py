"""Allocation modes and the node priority queue."""

import pytest

from repro.config import MachineConfig
from repro.core.modes import (AdaptivePriorityMode, DenseMode, SparseMode,
                              make_mode)
from repro.core.priority import NodePriorityQueue
from repro.errors import AllocationError
from repro.hardware.topology import Topology
from repro.opsys.thread import SimThread
from repro.opsys.workitem import ListWorkSource


@pytest.fixture
def topo():
    return Topology(MachineConfig(n_sockets=4, cores_per_socket=4))


class TestSparseDense:
    def test_sparse_order_round_robins_nodes(self, topo):
        order = SparseMode(topo).allocation_order()
        # paper Fig 12a: one core at a time on a different node
        assert order[:4] == [0, 4, 8, 12]
        assert order[4:8] == [1, 5, 9, 13]
        assert sorted(order) == list(range(16))

    def test_dense_order_fills_nodes(self, topo):
        order = DenseMode(topo).allocation_order()
        # paper Fig 12b: fill node 0 before node 1
        assert order[:4] == [0, 1, 2, 3]
        assert order[4:8] == [4, 5, 6, 7]

    def test_next_allocation_skips_allocated(self, topo):
        mode = SparseMode(topo)
        assert mode.next_allocation(frozenset({0, 4})) == 8

    def test_release_is_reverse_walk(self, topo):
        mode = DenseMode(topo)
        assert mode.next_release(frozenset({0, 1, 5})) == 5
        assert mode.next_release(frozenset({0})) == 0

    def test_all_allocated_rejected(self, topo):
        mode = SparseMode(topo)
        with pytest.raises(AllocationError):
            mode.next_allocation(frozenset(range(16)))

    def test_nothing_to_release_rejected(self, topo):
        with pytest.raises(AllocationError):
            DenseMode(topo).next_release(frozenset())

    def test_initial_mask_prefix_of_order(self, topo):
        mode = SparseMode(topo)
        assert mode.initial_mask(3) == [0, 4, 8]

    def test_allocate_release_are_inverses(self, topo):
        mode = DenseMode(topo)
        allocated: set[int] = set()
        for _ in range(16):
            allocated.add(mode.next_allocation(frozenset(allocated)))
        assert allocated == set(range(16))
        for _ in range(16):
            allocated.discard(mode.next_release(frozenset(allocated)))
        assert allocated == set()


class TestPriorityQueue:
    def _thread_with(self, pages_by_node):
        thread = SimThread(ListWorkSource())
        thread.pages_by_node.update(pages_by_node)
        return thread

    def test_update_aggregates_threads(self):
        queue = NodePriorityQueue(4)
        queue.update([self._thread_with({0: 10, 1: 2}),
                      self._thread_with({1: 5})])
        assert queue.counts() == [10.0, 7.0, 0.0, 0.0]
        assert queue.hottest() == 0
        assert queue.coldest() in (2, 3)

    def test_priority_order_desc_with_tiebreak(self):
        queue = NodePriorityQueue(4)
        queue.update([self._thread_with({2: 5, 1: 5})])
        assert queue.by_priority() == [1, 2, 0, 3]

    def test_fallback_when_no_thread_pages(self):
        queue = NodePriorityQueue(4)
        queue.update([], fallback=[1, 9, 3, 0])
        assert queue.hottest() == 1

    def test_thread_pages_override_fallback(self):
        queue = NodePriorityQueue(2)
        queue.update([self._thread_with({1: 3})], fallback=[100, 0])
        assert queue.hottest() == 1


class TestAdaptiveMode:
    def test_allocates_on_hottest_node_first(self, topo):
        queue = NodePriorityQueue(4)
        queue.update([], fallback=[0, 0, 50, 10])
        mode = AdaptivePriorityMode(topo, queue)
        assert mode.next_allocation(frozenset()) == 8  # node 2
        # node 2 partially full: keep filling it
        assert mode.next_allocation(frozenset({8})) == 9
        # node 2 full: next hottest (node 3)
        full_node2 = frozenset({8, 9, 10, 11})
        assert mode.next_allocation(full_node2) == 12

    def test_releases_from_coldest_node(self, topo):
        queue = NodePriorityQueue(4)
        queue.update([], fallback=[50, 10, 5, 0])
        mode = AdaptivePriorityMode(topo, queue)
        allocated = frozenset({0, 4, 12})
        assert mode.next_release(allocated) == 12  # node 3 is coldest

    def test_allocation_order_follows_priority(self, topo):
        queue = NodePriorityQueue(4)
        queue.update([], fallback=[0, 100, 0, 0])
        mode = AdaptivePriorityMode(topo, queue)
        assert mode.allocation_order()[:4] == [4, 5, 6, 7]

    def test_queue_size_must_match(self, topo):
        with pytest.raises(AllocationError):
            AdaptivePriorityMode(topo, NodePriorityQueue(2))

    def test_exhaustion_rejected(self, topo):
        mode = AdaptivePriorityMode(topo, NodePriorityQueue(4))
        with pytest.raises(AllocationError):
            mode.next_allocation(frozenset(range(16)))
        with pytest.raises(AllocationError):
            mode.next_release(frozenset())


def test_make_mode_factory(topo):
    assert isinstance(make_mode("sparse", topo), SparseMode)
    assert isinstance(make_mode("dense", topo), DenseMode)
    assert isinstance(make_mode("adaptive", topo), AdaptivePriorityMode)
    with pytest.raises(AllocationError):
        make_mode("random", topo)
