"""Generic PrT net: tokens, guards, firing, incidence matrices."""

import pytest

from repro.core.petrinet import Arc, OutputArc, PetriNet, Transition
from repro.errors import PetriNetError


def simple_net() -> PetriNet:
    """A -> t -> B moving a valued token when value >= 5."""
    net = PetriNet()
    net.add_place("A")
    net.add_place("B")
    net.add_transition(Transition(
        "t", guard=lambda b: b["x"] >= 5,
        inputs=[Arc("A", ("x",), "x")],
        outputs=[OutputArc("B", lambda b: (b["x"] + 1,), "x")]))
    return net


def test_place_token_fifo():
    net = PetriNet()
    place = net.add_place("P")
    place.put((1.0,))
    place.put((2.0,))
    assert place.peek() == (1.0,)
    assert place.take() == (1.0,)
    assert len(place) == 1


def test_take_from_empty_rejected():
    net = PetriNet()
    with pytest.raises(PetriNetError):
        net.add_place("P").take()


def test_enabled_requires_token_and_guard():
    net = simple_net()
    assert not net.is_enabled("t")           # no token
    net.set_token("A", (3,))
    assert not net.is_enabled("t")           # guard fails
    net.set_token("A", (7,))
    assert net.is_enabled("t")


def test_fire_moves_and_transforms_token():
    net = simple_net()
    net.set_token("A", (7,))
    binding = net.fire("t")
    assert binding == {"x": 7.0}
    assert net.place("A").peek() is None
    assert net.place("B").peek() == (8.0,)
    assert net.fired_log == ["t"]


def test_fire_disabled_rejected():
    net = simple_net()
    with pytest.raises(PetriNetError):
        net.fire("t")
    net.set_token("A", (1,))
    with pytest.raises(PetriNetError):
        net.fire("t")


def test_step_fires_first_enabled():
    net = simple_net()
    assert net.step() is None
    net.set_token("A", (9,))
    assert net.step() == "t"


def test_arity_mismatch_detected():
    net = PetriNet()
    net.add_place("A")
    net.add_place("B")
    net.add_transition(Transition(
        "t", inputs=[Arc("A", ("x", "y"))],
        outputs=[OutputArc("B", lambda b: (0,))]))
    net.set_token("A", (1,))
    with pytest.raises(PetriNetError):
        net.is_enabled("t")


def test_conflicting_binding_disables():
    net = PetriNet()
    net.add_place("A")
    net.add_place("B")
    net.add_place("C")
    net.add_transition(Transition(
        "t", inputs=[Arc("A", ("x",)), Arc("B", ("x",))],
        outputs=[OutputArc("C", lambda b: (b["x"],))]))
    net.set_token("A", (1,))
    net.set_token("B", (2,))  # binds x to a different value
    assert not net.is_enabled("t")
    net.set_token("B", (1,))
    assert net.is_enabled("t")


def test_unknown_place_in_transition_rejected():
    net = PetriNet()
    net.add_place("A")
    with pytest.raises(PetriNetError):
        net.add_transition(Transition(
            "t", inputs=[Arc("missing", ("x",))]))


def test_duplicate_transition_rejected():
    net = simple_net()
    with pytest.raises(PetriNetError):
        net.add_transition(Transition("t"))


def test_total_tokens_conserved_by_simple_net():
    net = simple_net()
    net.set_token("A", (10,))
    before = net.total_tokens()
    net.fire("t")
    assert net.total_tokens() == before


def test_incidence_matrices():
    net = simple_net()
    pre, post, incidence = net.incidence()
    assert pre[("A", "t")] == "x"
    assert pre[("B", "t")] == 0
    assert post[("B", "t")] == "x"
    assert incidence[("A", "t")] == "-x"
    assert incidence[("B", "t")] == "+x"


def test_marking_snapshot():
    net = simple_net()
    net.set_token("A", (4,))
    marking = net.marking()
    assert marking == {"A": [(4.0,)], "B": []}
