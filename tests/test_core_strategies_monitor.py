"""Transition strategies, the monitor and the LONC tracker."""

import pytest

from repro.core.lonc import LoncTracker, lonc_satisfied
from repro.core.monitor import Monitor, MonitorSample
from repro.core.strategies import (CpuLoadStrategy, HtImcStrategy,
                                   UsefulLoadStrategy, make_strategy)
from repro.errors import ConfigError
from repro.hardware.prebuilt import small_numa
from repro.opsys.loadstats import LoadSample
from repro.opsys.system import OperatingSystem
from repro.opsys.workitem import ListWorkSource, WorkItem


def make_sample(busy=50.0, useful=40.0, ht=0.0, imc=0.0, runnable=0,
                allocated=4):
    cores = tuple(range(allocated))
    load = LoadSample(
        time=1.0, window=0.02,
        per_core_busy={c: busy for c in cores},
        per_core_useful={c: useful for c in cores},
        allocated_cores=cores)
    return MonitorSample(time=1.0, window=0.02, load=load, ht_bytes=ht,
                         imc_bytes=imc, l3_misses=0.0,
                         runnable_threads=runnable,
                         n_allocated=allocated)


class TestCpuLoadStrategy:
    def test_defaults_are_paper_thresholds(self):
        strategy = CpuLoadStrategy()
        assert (strategy.th_min, strategy.th_max) == (10.0, 70.0)

    def test_metric_is_busy_average(self):
        assert CpuLoadStrategy().metric(make_sample(busy=83.0)) == 83.0

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            CpuLoadStrategy(th_min=70, th_max=10)
        with pytest.raises(ConfigError):
            CpuLoadStrategy(th_min=-1, th_max=50)


class TestUsefulLoadStrategy:
    def test_metric_is_useful_average(self):
        assert UsefulLoadStrategy().metric(
            make_sample(busy=100.0, useful=42.0)) == 42.0


class TestHtImcStrategy:
    def test_defaults(self):
        strategy = HtImcStrategy()
        assert (strategy.th_min, strategy.th_max) == (0.1, 0.4)

    def test_plain_ratio(self):
        sample = make_sample(ht=30.0, imc=100.0)
        assert HtImcStrategy().metric(sample) == pytest.approx(0.3)

    def test_zero_imc_gives_zero(self):
        assert HtImcStrategy().metric(make_sample()) == 0.0

    def test_local_saturation_with_queue_pressure_is_overload(self):
        sample = make_sample(busy=30.0, ht=0.0, imc=100.0, runnable=20,
                             allocated=4)
        strategy = HtImcStrategy()
        assert strategy.metric(sample) == strategy.th_max

    def test_local_saturation_with_high_busy_is_overload(self):
        sample = make_sample(busy=95.0, ht=0.0, imc=100.0, runnable=1,
                             allocated=1)
        strategy = HtImcStrategy()
        assert strategy.metric(sample) == strategy.th_max

    def test_quiet_local_system_stays_idle(self):
        sample = make_sample(busy=5.0, ht=0.0, imc=100.0, runnable=1,
                             allocated=4)
        assert HtImcStrategy().metric(sample) == 0.0


def test_make_strategy_factory():
    assert isinstance(make_strategy("cpu_load"), CpuLoadStrategy)
    assert isinstance(make_strategy("ht_imc"), HtImcStrategy)
    assert isinstance(make_strategy("useful_load"), UsefulLoadStrategy)
    with pytest.raises(ConfigError):
        make_strategy("entropy")


class TestMonitor:
    def test_windows_and_deltas(self):
        os_ = OperatingSystem(small_numa())
        monitor = Monitor(os_)
        monitor.prime()
        pages = list(os_.machine.memory.allocate(8))
        os_.spawn_thread(ListWorkSource(
            [WorkItem("scan", reads=pages, cycles=1e6)]))
        os_.run_until_idle()
        sample = monitor.sample()
        assert sample.imc_bytes > 0
        assert sample.window == pytest.approx(os_.now)
        assert sample.n_allocated == os_.topology.n_cores
        # second sample over an empty window
        second = monitor.sample()
        assert second.imc_bytes == 0.0

    def test_ratio_property(self):
        sample = make_sample(ht=25.0, imc=50.0)
        assert sample.ht_imc_ratio == pytest.approx(0.5)
        assert make_sample().ht_imc_ratio == 0.0


class TestLonc:
    def test_lonc_satisfied_band(self):
        assert lonc_satisfied(40, 10, 70)
        assert not lonc_satisfied(10, 10, 70)
        assert not lonc_satisfied(70, 10, 70)

    def test_tracker_report(self):
        tracker = LoncTracker(10, 70)
        for metric, cores in [(5, 4), (50, 4), (50, 5), (90, 5)]:
            tracker.record(metric, cores)
        report = tracker.report()
        assert report.ticks == 4
        assert report.stable_ticks == 2
        assert report.idle_ticks == 1
        assert report.overload_ticks == 1
        assert report.stable_fraction == pytest.approx(0.5)
        assert (report.min_cores, report.max_cores) == (4, 5)
        assert report.mean_cores == pytest.approx(4.5)

    def test_empty_tracker(self):
        report = LoncTracker(10, 70).report()
        assert report.ticks == 0
        assert report.stable_fraction == 0.0
