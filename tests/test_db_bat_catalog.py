"""BATs and the catalog: page assignment, slicing, placement policies."""

import numpy as np
import pytest

from repro.db.bat import BAT
from repro.db.catalog import Catalog, Table
from repro.errors import DatabaseError
from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa
from repro.opsys.vm import VirtualMemory


@pytest.fixture
def machine():
    return Machine(small_numa())


class TestBAT:
    def test_sim_bytes_scaled(self):
        bat = BAT("x", np.zeros(1000), byte_scale=10.0)
        assert bat.real_bytes == 8000
        assert bat.sim_bytes == 80_000

    def test_rejects_2d(self):
        with pytest.raises(DatabaseError):
            BAT("x", np.zeros((2, 2)))

    def test_rejects_bad_scale(self):
        with pytest.raises(DatabaseError):
            BAT("x", np.zeros(4), byte_scale=0)

    def test_pages_require_loading(self, machine):
        bat = BAT("x", np.zeros(1000), byte_scale=100.0)
        with pytest.raises(DatabaseError):
            _ = bat.pages
        pages = bat.assign_pages(machine.memory)
        expected = -(-bat.sim_bytes // machine.memory.page_bytes)
        assert len(pages) == expected
        assert bat.loaded

    def test_double_assign_rejected(self, machine):
        bat = BAT("x", np.zeros(1000), byte_scale=100.0)
        bat.assign_pages(machine.memory)
        with pytest.raises(DatabaseError):
            bat.assign_pages(machine.memory)

    def test_page_slices_partition_exactly(self, machine):
        bat = BAT("x", np.zeros(100_000), byte_scale=10.0)
        bat.assign_pages(machine.memory)
        parts = [bat.page_slice(i, 3) for i in range(3)]
        joined = [p for part in parts for p in part]
        assert joined == list(bat.pages)

    def test_row_slices_partition_exactly(self):
        bat = BAT("x", np.zeros(10))
        slices = [bat.row_slice(i, 3) for i in range(3)]
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(10))

    def test_slice_bounds_checked(self, machine):
        bat = BAT("x", np.zeros(10))
        with pytest.raises(DatabaseError):
            bat.row_slice(3, 3)


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(DatabaseError):
            Table("t", {"a": np.zeros(3), "b": np.zeros(4)})

    def test_empty_table_rejected(self):
        with pytest.raises(DatabaseError):
            Table("t", {})

    def test_env_and_lookup(self):
        table = Table("t", {"a": np.arange(5)})
        assert "a" in table
        assert table.bat("a").n_rows == 5
        np.testing.assert_array_equal(table.env()["a"], np.arange(5))
        with pytest.raises(DatabaseError):
            table.bat("nope")

    def test_sim_bytes_sums_columns(self):
        table = Table("t", {"a": np.zeros(10), "b": np.zeros(10)},
                      byte_scale=2.0)
        assert table.sim_bytes == 2 * (10 * 8 * 2)


class TestCatalog:
    def _catalog(self):
        catalog = Catalog()
        catalog.add(Table("t", {"a": np.zeros(100_000)}, byte_scale=5.0))
        return catalog

    def test_duplicate_table_rejected(self):
        catalog = self._catalog()
        with pytest.raises(DatabaseError):
            catalog.add(Table("t", {"a": np.zeros(1)}))

    def test_unknown_table_rejected(self):
        with pytest.raises(DatabaseError):
            self._catalog().table("nope")

    def test_single_node_policy_places_everything_on_one_node(
            self, machine):
        catalog = self._catalog()
        vm = VirtualMemory(machine)
        catalog.load(vm, policy="single_node", loader_node=1)
        histogram = machine.memory.placement_histogram()
        assert histogram[1] > 0
        assert histogram[0] == 0

    def test_chunked_policy_spreads_across_nodes(self, machine):
        catalog = self._catalog()
        vm = VirtualMemory(machine)
        catalog.load(vm, policy="chunked")
        histogram = machine.memory.placement_histogram()
        assert all(count > 0 for count in histogram)

    def test_double_load_rejected(self, machine):
        catalog = self._catalog()
        vm = VirtualMemory(machine)
        catalog.load(vm)
        with pytest.raises(DatabaseError):
            catalog.load(vm)

    def test_unknown_policy_rejected(self, machine):
        catalog = self._catalog()
        with pytest.raises(DatabaseError):
            catalog.load(VirtualMemory(machine), policy="scattered")

    def test_add_after_load_rejected(self, machine):
        catalog = self._catalog()
        catalog.load(VirtualMemory(machine))
        with pytest.raises(DatabaseError):
            catalog.add(Table("u", {"x": np.zeros(1)}))
