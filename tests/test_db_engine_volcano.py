"""Engines and the Volcano executor: staged execution on the simulator."""

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.db.catalog import Catalog, Table
from repro.db.clients import ClientPool, repeat_stream
from repro.db.engine import MonetDBLike
from repro.db.expressions import Col, gt
from repro.db.numa_aware import NumaAwareEngine
from repro.db.operators import Aggregate, Filter, Scan
from repro.errors import DatabaseError, WorkloadError
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.sim.tracing import QueryRecord, StageRecord


def make_catalog():
    rng = np.random.default_rng(3)
    catalog = Catalog()
    catalog.add(Table("fact", {
        "k": rng.integers(0, 100, 20_000),
        "v": rng.uniform(0, 100, 20_000),
    }, byte_scale=30.0))
    return catalog


def simple_query():
    return Aggregate(Filter(Scan("fact"), gt(Col("v"), 50)), [],
                     {"n": ("count", None)})


@pytest.fixture
def engine():
    os_ = OperatingSystem(small_numa())
    eng = MonetDBLike(os_, make_catalog(), byte_scale=30.0)
    eng.load()
    os_.counters.reset()
    eng.register_query("count_big", simple_query())
    return eng


class TestEngineBasics:
    def test_submit_before_load_rejected(self):
        os_ = OperatingSystem(small_numa())
        eng = MonetDBLike(os_, make_catalog(), byte_scale=30.0)
        eng.register_query("q", simple_query())
        with pytest.raises(DatabaseError):
            eng.submit("q")

    def test_duplicate_registration_rejected(self, engine):
        with pytest.raises(DatabaseError):
            engine.register_query("count_big", simple_query())

    def test_unknown_query_rejected(self, engine):
        with pytest.raises(DatabaseError):
            engine.submit("missing")

    def test_profile_cached(self, engine):
        first = engine.profile("count_big")
        assert engine.profile("count_big") is first

    def test_run_to_completion(self, engine):
        execution = engine.run_to_completion("count_big")
        assert execution.finished
        assert execution.elapsed > 0

    def test_worker_count_follows_mask(self, engine):
        assert engine.worker_count() == 4
        engine.os.cpuset.set_mask([0, 1])
        assert engine.worker_count() == 2

    def test_worker_count_fixed_when_configured(self):
        os_ = OperatingSystem(small_numa())
        eng = MonetDBLike(os_, make_catalog(), byte_scale=30.0,
                          config=EngineConfig(workers_follow_mask=False,
                                              loader_node=0))
        os_.cpuset.set_mask([0])
        assert eng.worker_count() == 4


class TestVolcanoExecution:
    def test_stage_barrier_ordering(self, engine):
        engine.run_to_completion("count_big")
        records = engine.os.tracer.of(StageRecord)
        by_label = {}
        for record in records:
            by_label.setdefault(record.operator, []).append(record)
        select_end = max(r.time for r in by_label["algebra.select"])
        partial_start = min(r.start_time
                            for r in by_label["aggr.group.partial"])
        assert partial_start >= select_end

    def test_parallel_stage_fans_out(self, engine):
        engine.run_to_completion("count_big")
        selects = [r for r in engine.os.tracer.of(StageRecord)
                   if r.operator == "algebra.select"]
        assert len(selects) == 4  # one per visible core

    def test_query_record_emitted(self, engine):
        engine.run_to_completion("count_big")
        records = engine.os.tracer.of(QueryRecord)
        assert len(records) == 1
        assert records[0].query_name == "count_big"

    def test_intermediates_freed_after_query(self, engine):
        memory = engine.os.machine.memory
        base_pages = sum(memory.placement_histogram())
        engine.run_to_completion("count_big")
        assert sum(memory.placement_histogram()) == base_pages

    def test_concurrent_queries_complete(self, engine):
        for _ in range(3):
            engine.submit("count_big")
        engine.os.run_until_idle()
        assert len(engine.os.tracer.of(QueryRecord)) == 3


class TestNumaAwareEngine:
    def test_chunked_load_spreads_data(self):
        os_ = OperatingSystem(small_numa())
        eng = NumaAwareEngine(os_, make_catalog(), byte_scale=30.0)
        eng.load()
        histogram = os_.machine.memory.placement_histogram()
        assert all(v > 0 for v in histogram)

    def test_workers_node_affined(self):
        os_ = OperatingSystem(small_numa())
        eng = NumaAwareEngine(os_, make_catalog(), byte_scale=30.0)
        eng.load()
        os_.counters.reset()
        eng.register_query("q", simple_query())
        execution = eng.submit("q")
        nodes = {w.pinned_node for w in execution.workers}
        assert nodes == {0, 1}
        os_.run_until_idle()
        assert execution.finished

    def test_small_queries_rotate_nodes(self):
        os_ = OperatingSystem(small_numa())
        eng = NumaAwareEngine(os_, make_catalog(), byte_scale=30.0)
        first = eng.pinned_nodes(1)
        second = eng.pinned_nodes(1)
        assert first != second


class TestClientPool:
    def test_closed_loop_completes_all(self, engine):
        pool = ClientPool(engine, 3, repeat_stream("count_big", 2))
        result = pool.run()
        assert result.queries_completed == 6
        assert result.throughput > 0
        assert len(result.latencies("count_big")) == 6
        assert result.mean_latency() > 0

    def test_double_start_rejected(self, engine):
        pool = ClientPool(engine, 1, repeat_stream("count_big", 1))
        pool.run()
        with pytest.raises(WorkloadError):
            pool.start()

    def test_zero_clients_rejected(self, engine):
        with pytest.raises(WorkloadError):
            ClientPool(engine, 0, repeat_stream("count_big", 1))

    def test_repeat_stream_validates(self):
        with pytest.raises(WorkloadError):
            repeat_stream("q", 0)
