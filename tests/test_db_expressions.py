"""Expression trees: evaluation and column tracking."""

import numpy as np
import pytest

from repro.db.expressions import (And, Between, Case, Col, Const, Floor,
                                  InList, Not, Or, eq, ge, gt, le, lt, ne)
from repro.errors import PlanError


@pytest.fixture
def env():
    return {
        "a": np.array([1.0, 2.0, 3.0, 4.0]),
        "b": np.array([4.0, 3.0, 2.0, 1.0]),
        "k": np.array([0, 1, 2, 3]),
    }


def test_col_and_const(env):
    np.testing.assert_array_equal(Col("a").evaluate(env), env["a"])
    assert Const(7).evaluate(env) == 7


def test_unknown_column_rejected(env):
    with pytest.raises(PlanError):
        Col("missing").evaluate(env)


def test_arithmetic_operators(env):
    np.testing.assert_allclose((Col("a") + Col("b")).evaluate(env),
                               [5.0] * 4)
    np.testing.assert_allclose((Col("a") * 2).evaluate(env),
                               [2, 4, 6, 8])
    np.testing.assert_allclose((10 - Col("a")).evaluate(env),
                               [9, 8, 7, 6])
    np.testing.assert_allclose((Col("a") / Col("b")).evaluate(env),
                               [0.25, 2 / 3, 1.5, 4.0])


def test_comparisons(env):
    np.testing.assert_array_equal(lt(Col("a"), 3).evaluate(env),
                                  [True, True, False, False])
    np.testing.assert_array_equal(ge(Col("a"), Col("b")).evaluate(env),
                                  [False, False, True, True])
    np.testing.assert_array_equal(eq(Col("k"), 2).evaluate(env),
                                  [False, False, True, False])
    np.testing.assert_array_equal(ne(Col("k"), 2).evaluate(env),
                                  [True, True, False, True])
    np.testing.assert_array_equal(le(Col("a"), 1).evaluate(env),
                                  [True, False, False, False])
    np.testing.assert_array_equal(gt(Col("a"), 3.5).evaluate(env),
                                  [False, False, False, True])


def test_boolean_connectives(env):
    expr = And(gt(Col("a"), 1), lt(Col("a"), 4))
    np.testing.assert_array_equal(expr.evaluate(env),
                                  [False, True, True, False])
    expr = Or(eq(Col("k"), 0), eq(Col("k"), 3))
    np.testing.assert_array_equal(expr.evaluate(env),
                                  [True, False, False, True])
    np.testing.assert_array_equal(Not(eq(Col("k"), 0)).evaluate(env),
                                  [False, True, True, True])


def test_empty_connectives_rejected():
    with pytest.raises(PlanError):
        And()
    with pytest.raises(PlanError):
        Or()


def test_between_inclusive(env):
    np.testing.assert_array_equal(
        Between(Col("a"), 2, 3).evaluate(env),
        [False, True, True, False])


def test_in_list(env):
    np.testing.assert_array_equal(
        InList(Col("k"), [1, 3]).evaluate(env),
        [False, True, False, True])
    with pytest.raises(PlanError):
        InList(Col("k"), [])


def test_case(env):
    expr = Case(gt(Col("a"), 2), Col("a"), Const(0.0))
    np.testing.assert_allclose(expr.evaluate(env), [0, 0, 3, 4])


def test_floor(env):
    expr = Floor(Col("a") / 2)
    result = expr.evaluate(env)
    np.testing.assert_array_equal(result, [0, 1, 1, 2])
    assert result.dtype == np.int64


def test_columns_tracking():
    expr = And(gt(Col("a"), 1), Between(Col("b"), Col("c"), 5))
    assert expr.columns() == {"a", "b", "c"}
    assert Const(1).columns() == set()
    assert Case(eq(Col("x"), 1), Col("y"), Col("z")).columns() \
        == {"x", "y", "z"}
    assert Floor(Col("d")).columns() == {"d"}
    assert InList(Col("m"), [1]).columns() == {"m"}
