"""The morsel-driven engine."""

import numpy as np
import pytest

from repro.db.catalog import Catalog, Table
from repro.db.expressions import Col, gt
from repro.db.morsel import MorselEngine, MorselQueryExecution
from repro.db.operators import Aggregate, Filter, Scan
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.sim.tracing import QueryRecord, StageRecord


def make_engine(morsel_bytes=256 * 1024):
    rng = np.random.default_rng(9)
    catalog = Catalog()
    catalog.add(Table("fact", {
        "k": rng.integers(0, 100, 30_000),
        "v": rng.uniform(0, 100, 30_000),
    }, byte_scale=40.0))
    os_ = OperatingSystem(small_numa())
    engine = MorselEngine(os_, catalog, byte_scale=40.0,
                          morsel_bytes=morsel_bytes)
    engine.load()
    os_.counters.reset()
    engine.register_query(
        "agg", Aggregate(Filter(Scan("fact"), gt(Col("v"), 50)), ["k"],
                         {"s": ("sum", Col("v"))}))
    return os_, engine


def test_scan_stage_splits_into_many_morsels():
    os_, engine = make_engine()
    execution = engine.submit("agg")
    first_stage = execution.compiled.stage_items[0]
    assert len(first_stage) > engine.worker_count()
    os_.run_until_idle()
    assert execution.finished


def test_partial_aggregation_stays_per_worker():
    os_, engine = make_engine()
    execution = engine.submit("agg")
    labels = {}
    for items in execution.compiled.stage_items:
        labels[items[0].label] = len(items)
    assert labels["aggr.group.partial"] == engine.worker_count()
    os_.run_until_idle()


def test_workers_are_node_affined():
    os_, engine = make_engine()
    execution = engine.submit("agg")
    nodes = {w.pinned_node for w in execution.workers}
    assert nodes <= set(os_.topology.all_nodes())
    assert len(nodes) > 1   # spread over nodes, not piled on one
    os_.run_until_idle()


def test_data_is_chunked_across_nodes():
    os_, engine = make_engine()
    histogram = os_.machine.memory.placement_histogram()
    assert all(v > 0 for v in histogram)


def test_query_completes_and_emits_records():
    os_, engine = make_engine()
    engine.submit("agg")
    os_.run_until_idle()
    assert len(os_.tracer.of(QueryRecord)) == 1
    scans = [r for r in os_.tracer.of(StageRecord)
             if r.operator == "algebra.select"]
    # every morsel produces a stage record
    assert len(scans) > engine.worker_count()


def test_local_morsel_preference_in_dispatch():
    """next_item hands a worker the first morsel homed on its node."""
    from collections import deque

    from repro.db.cost import CompiledQuery
    from repro.opsys.workitem import WorkItem

    os_, engine = make_engine()
    memory = os_.machine.memory
    (node0_page,) = memory.allocate(1)
    memory.place(node0_page, 0)
    (node1_page,) = memory.allocate(1)
    memory.place(node1_page, 1)

    execution = MorselQueryExecution(
        CompiledQuery(name="probe", stage_items=[],
                      intermediate_pages=[]), os_)
    remote_first = WorkItem("m0", reads=[node1_page])
    local_second = WorkItem("m1", reads=[node0_page])
    execution._pending = deque([remote_first, local_second])

    class FakeThread:
        core = 0  # node 0

    picked = execution.next_item(FakeThread())
    assert picked is local_second
    # the remaining morsel goes out next regardless of locality
    assert execution.next_item(FakeThread()) is remote_first
    assert execution.next_item(FakeThread()) is None


def test_morsel_engine_moves_less_data_than_scattered_baseline():
    """End-to-end: NUMA-local dispatch beats ignoring locality."""
    os_a, engine_a = make_engine()
    engine_a.submit("agg")
    os_a.run_until_idle()
    local_ht = os_a.counters.total("ht_tx_bytes")

    # same engine but with the locality preference disabled
    os_b, engine_b = make_engine()
    MorselQueryExecution.SCAN_DEPTH = 0
    try:
        engine_b.submit("agg")
        os_b.run_until_idle()
    finally:
        MorselQueryExecution.SCAN_DEPTH = 16
    scattered_ht = os_b.counters.total("ht_tx_bytes")
    assert local_ht <= scattered_ht
