"""Logical operators: numpy-level correctness against hand oracles."""

import numpy as np
import pytest

from repro.db.catalog import Catalog, Table
from repro.db.expressions import Col, gt, lt
from repro.db.operators import (Aggregate, Distinct, Filter, Join, Limit,
                                OrderBy, Project, Scan, relation_bytes,
                                relation_rows)
from repro.errors import PlanError


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add(Table("t", {
        "k": np.array([1, 2, 3, 4, 5]),
        "v": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        "g": np.array([0, 1, 0, 1, 0]),
    }))
    catalog.add(Table("dim", {
        "dk": np.array([2, 4, 6]),
        "name": np.array([200, 400, 600]),
    }))
    return catalog


def test_relation_helpers():
    rel = {"a": np.zeros(4), "b": np.zeros(4)}
    assert relation_rows(rel) == 4
    assert relation_rows({}) == 0
    assert relation_bytes(rel) == 64


def test_scan_full_and_subset(catalog):
    assert set(Scan("t").evaluate(catalog)) == {"k", "v", "g"}
    assert set(Scan("t", ["k"]).evaluate(catalog)) == {"k"}


def test_filter_with_keep(catalog):
    rel = Filter(Scan("t"), gt(Col("v"), 25), keep=["k"]) \
        .evaluate(catalog)
    np.testing.assert_array_equal(rel["k"], [3, 4, 5])
    assert set(rel) == {"k"}


def test_project_expressions_and_broadcast(catalog):
    rel = Project(Scan("t"), {"double": Col("v") * 2,
                              "flag": Col("g")}).evaluate(catalog)
    np.testing.assert_allclose(rel["double"], [20, 40, 60, 80, 100])
    assert relation_rows(rel) == 5


def test_project_requires_outputs(catalog):
    with pytest.raises(PlanError):
        Project(Scan("t"), {})


class TestJoin:
    def test_inner_join(self, catalog):
        rel = Join(Scan("t"), Scan("dim"), ["k"], ["dk"]) \
            .evaluate(catalog)
        np.testing.assert_array_equal(rel["k"], [2, 4])
        np.testing.assert_array_equal(rel["name"], [200, 400])

    def test_inner_join_with_duplicates(self, catalog):
        catalog.add(Table("dup", {"dk": np.array([2, 2]),
                                  "w": np.array([7, 8])}))
        rel = Join(Scan("t", ["k"]), Scan("dup"), ["k"], ["dk"]) \
            .evaluate(catalog)
        np.testing.assert_array_equal(rel["k"], [2, 2])
        assert sorted(rel["w"]) == [7, 8]

    def test_semi_and_anti(self, catalog):
        semi = Join(Scan("t", ["k"]), Scan("dim"), ["k"], ["dk"],
                    how="semi").evaluate(catalog)
        np.testing.assert_array_equal(semi["k"], [2, 4])
        anti = Join(Scan("t", ["k"]), Scan("dim"), ["k"], ["dk"],
                    how="anti").evaluate(catalog)
        np.testing.assert_array_equal(anti["k"], [1, 3, 5])

    def test_left_join_fills_unmatched(self, catalog):
        rel = Join(Scan("t", ["k"]), Scan("dim"), ["k"], ["dk"],
                   how="left", fill=-1).evaluate(catalog)
        assert relation_rows(rel) == 5
        by_key = dict(zip(rel["k"].tolist(), rel["name"].tolist()))
        assert by_key == {1: -1, 2: 200, 3: -1, 4: 400, 5: -1}

    def test_multi_key_join(self, catalog):
        catalog.add(Table("pair", {
            "a": np.array([1, 2, 3]),
            "b": np.array([0, 1, 0]),
            "payload": np.array([11, 22, 33]),
        }))
        rel = Join(Scan("t"), Scan("pair"), ["k", "g"], ["a", "b"],
                   keep_left=["k"]).evaluate(catalog)
        np.testing.assert_array_equal(sorted(rel["payload"]), [11, 22, 33])

    def test_empty_build_side(self, catalog):
        catalog.add(Table("empty", {"dk": np.array([], dtype=np.int64)}))
        inner = Join(Scan("t", ["k"]), Scan("empty"), ["k"], ["dk"]) \
            .evaluate(catalog)
        assert relation_rows(inner) == 0
        left = Join(Scan("t", ["k"]), Scan("empty"), ["k"], ["dk"],
                    how="left").evaluate(catalog)
        assert relation_rows(left) == 5

    def test_bad_join_args(self, catalog):
        with pytest.raises(PlanError):
            Join(Scan("t"), Scan("dim"), ["k"], ["dk"], how="outer")
        with pytest.raises(PlanError):
            Join(Scan("t"), Scan("dim"), [], [])
        with pytest.raises(PlanError):
            Join(Scan("t"), Scan("dim"), ["k"], ["dk", "name"])


class TestAggregate:
    def test_grouped_sums_and_counts(self, catalog):
        rel = Aggregate(Scan("t"), ["g"], {
            "total": ("sum", Col("v")),
            "n": ("count", None),
        }).evaluate(catalog)
        by_group = {int(g): (t, n) for g, t, n in
                    zip(rel["g"], rel["total"], rel["n"])}
        assert by_group[0] == (90.0, 3)
        assert by_group[1] == (60.0, 2)

    def test_avg_min_max(self, catalog):
        rel = Aggregate(Scan("t"), [], {
            "avg_v": ("avg", Col("v")),
            "min_v": ("min", Col("v")),
            "max_v": ("max", Col("v")),
        }).evaluate(catalog)
        assert rel["avg_v"][0] == pytest.approx(30.0)
        assert rel["min_v"][0] == 10.0
        assert rel["max_v"][0] == 50.0

    def test_count_distinct(self, catalog):
        catalog.add(Table("cd", {
            "g": np.array([0, 0, 0, 1, 1]),
            "x": np.array([5, 5, 6, 7, 7]),
        }))
        rel = Aggregate(Scan("cd"), ["g"], {
            "d": ("count_distinct", Col("x")),
        }).evaluate(catalog)
        assert dict(zip(rel["g"].tolist(), rel["d"].tolist())) \
            == {0: 2, 1: 1}

    def test_unknown_aggregate_rejected(self, catalog):
        with pytest.raises(PlanError):
            Aggregate(Scan("t"), [], {"x": ("median", Col("v"))})
        with pytest.raises(PlanError):
            Aggregate(Scan("t"), [], {"x": ("sum", None)})

    def test_empty_input_grouped(self, catalog):
        rel = Aggregate(
            Filter(Scan("t"), gt(Col("v"), 1000)), ["g"],
            {"n": ("count", None)}).evaluate(catalog)
        assert relation_rows(rel) == 0


def test_distinct(catalog):
    catalog.add(Table("d", {"x": np.array([3, 1, 3, 2, 1])}))
    rel = Distinct(Scan("d"), ["x"]).evaluate(catalog)
    np.testing.assert_array_equal(rel["x"], [3, 1, 2])


def test_order_by_multi_key(catalog):
    rel = OrderBy(Scan("t"), ["g", "v"], [True, False]).evaluate(catalog)
    np.testing.assert_array_equal(rel["g"], [0, 0, 0, 1, 1])
    np.testing.assert_allclose(rel["v"], [50, 30, 10, 40, 20])


def test_limit(catalog):
    rel = Limit(OrderBy(Scan("t"), ["v"], [False]), 2).evaluate(catalog)
    np.testing.assert_allclose(rel["v"], [50, 40])
    with pytest.raises(PlanError):
        Limit(Scan("t"), -1)


def test_having_pattern(catalog):
    """Filter over an aggregate output (SQL HAVING)."""
    agg = Aggregate(Scan("t"), ["g"], {"total": ("sum", Col("v"))})
    rel = Filter(agg, lt(Col("total"), 80)).evaluate(catalog)
    np.testing.assert_array_equal(rel["g"], [1])
