"""Profiler and compiler: stage structure, wiring, instantiation."""

import numpy as np
import pytest

from repro.db.catalog import Catalog, Table
from repro.db.cost import CostModel, compile_profile
from repro.db.expressions import Col, gt
from repro.db.operators import (Aggregate, Filter, Join, Limit, OrderBy,
                                Project, Scan)
from repro.db.plan import profile_query
from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add(Table("fact", {
        "k": np.arange(50_000) % 500,
        "v": np.random.default_rng(0).uniform(0, 100, 50_000),
    }, byte_scale=20.0))
    catalog.add(Table("dim", {
        "dk": np.arange(500),
        "w": np.arange(500) * 1.0,
    }, byte_scale=20.0))
    return catalog


def test_filter_profile_reads_base_columns(catalog):
    plan = Filter(Scan("fact"), gt(Col("v"), 50), keep=["k"])
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    select = profile.stages[0]
    assert select.label == "algebra.select"
    assert set(select.base_reads) == {("fact", "k"), ("fact", "v")}
    assert select.parallel
    assert select.output_bytes > 0
    # final stage is the result shipment, serial
    assert profile.stages[-1].label == "sql.resultSet"
    assert not profile.stages[-1].parallel


def test_profile_result_matches_real_execution(catalog):
    plan = Aggregate(Filter(Scan("fact"), gt(Col("v"), 50)), [],
                     {"n": ("count", None)})
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    direct = plan.evaluate(catalog)
    assert profile.result["n"][0] == direct["n"][0]
    assert profile.result_rows == 1


def test_join_produces_build_and_probe_stages(catalog):
    plan = Join(Scan("fact"), Scan("dim"), ["k"], ["dk"])
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    labels = [s.label for s in profile.stages]
    assert "join.build" in labels
    probe = profile.stages[labels.index("algebra.join")]
    build_idx = labels.index("join.build")
    assert probe.shared_consumes == (build_idx,)


def test_aggregate_partial_final_pair(catalog):
    plan = Aggregate(Scan("fact"), ["k"], {"s": ("sum", Col("v"))})
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    labels = [s.label for s in profile.stages]
    partial = profile.stages[labels.index("aggr.group.partial")]
    final = profile.stages[labels.index("aggr.group.final")]
    assert partial.output_per_worker
    assert partial.parallel
    assert not final.parallel


def test_orderby_limit_stages(catalog):
    plan = Limit(OrderBy(Scan("fact"), ["v"]), 10)
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    labels = [s.label for s in profile.stages]
    assert "algebra.sort.partial" in labels
    assert "algebra.sort.merge" in labels
    assert "algebra.slice" in labels


def test_mal_name_override(catalog):
    plan = Filter(Scan("fact"), gt(Col("v"), 0), keep=["v"])
    plan.mal_name = "algebra.thetasubselect"
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    assert profile.stages[0].label == "algebra.thetasubselect"


def test_project_tracks_expression_columns(catalog):
    plan = Project(Scan("fact"), {"x": Col("v") * 2})
    profile = profile_query(plan, catalog, "q", byte_scale=20.0)
    assert profile.stages[0].base_reads == (("fact", "v"),)


class TestCostModel:
    def test_minimum_stage_cycles(self):
        cost = CostModel()
        assert cost.select_cycles(0) == cost.min_stage_cycles
        assert cost.agg_final_cycles(1) == cost.min_stage_cycles

    def test_costs_scale_with_bytes(self):
        cost = CostModel()
        assert cost.select_cycles(2e9) == pytest.approx(
            2 * cost.select_cycles(1e9))

    def test_hash_table_overhead(self):
        cost = CostModel()
        assert cost.hash_table_bytes(100) == pytest.approx(
            100 * cost.hash_table_factor)

    def test_sort_grows_with_log_rows(self):
        cost = CostModel()
        assert cost.sort_cycles(1e9, 1 << 20) > cost.sort_cycles(1e9, 2)


class TestCompiler:
    @staticmethod
    def _load(catalog):
        from repro.opsys.vm import VirtualMemory
        machine = Machine(small_numa())
        catalog.load(VirtualMemory(machine), policy="single_node")
        return machine

    def _compiled(self, catalog, n_workers):
        machine = self._load(catalog)
        plan = Aggregate(Filter(Scan("fact"), gt(Col("v"), 50)), ["k"],
                         {"s": ("sum", Col("v"))})
        profile = profile_query(plan, catalog, "q", byte_scale=20.0)
        return compile_profile(profile, catalog, n_workers,
                               machine.memory), profile

    def test_parallel_stage_items_match_workers(self, catalog):
        compiled, profile = self._compiled(catalog, 4)
        for stage, items in zip(profile.stages, compiled.stage_items):
            assert len(items) == (4 if stage.parallel else 1)

    def test_base_pages_partitioned_without_overlap(self, catalog):
        compiled, profile = self._compiled(catalog, 4)
        first = compiled.stage_items[0]
        seen = set()
        for item in first:
            pages = set(item.reads)
            assert not (pages & seen)
            seen |= pages
        total = sum(len(catalog.table("fact").bat(c).pages)
                    for c in ("k", "v"))
        assert len(seen) == total

    def test_consumers_read_producer_pages(self, catalog):
        compiled, profile = self._compiled(catalog, 2)
        select_writes = {p for item in compiled.stage_items[0]
                         for p in item.writes}
        partial_reads = {p for item in compiled.stage_items[1]
                         for p in item.reads}
        assert select_writes and select_writes <= partial_reads \
            | select_writes
        assert select_writes & partial_reads == select_writes

    def test_intermediates_tracked_for_freeing(self, catalog):
        compiled, _ = self._compiled(catalog, 2)
        writes = {p for items in compiled.stage_items
                  for item in items for p in item.writes}
        assert writes <= set(compiled.intermediate_pages)

    def test_partition_overhead_included(self, catalog):
        machine = self._load(catalog)
        plan = Filter(Scan("fact"), gt(Col("v"), 50), keep=["v"])
        profile = profile_query(plan, catalog, "q", byte_scale=20.0)
        cost = CostModel()
        compiled = compile_profile(profile, catalog, 4, machine.memory,
                                   cost)
        item = compiled.stage_items[0][0]
        expected = (profile.stages[0].cycles / 4
                    + cost.partition_overhead_cycles)
        assert item.cycles == pytest.approx(expected)

    def test_zero_workers_rejected(self, catalog):
        machine = Machine(small_numa())
        plan = Scan("fact")
        profile = profile_query(plan, catalog, "q", byte_scale=20.0)
        with pytest.raises(Exception):
            compile_profile(profile, catalog, 0, machine.memory)
