"""Volcano executor corner cases."""

import numpy as np
import pytest

from repro.db.catalog import Catalog, Table
from repro.db.engine import MonetDBLike
from repro.db.expressions import Col, gt
from repro.db.operators import Aggregate, Filter, Scan
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem


def make_engine(n_rows=10_000):
    rng = np.random.default_rng(1)
    catalog = Catalog()
    catalog.add(Table("fact", {
        "k": rng.integers(0, 10, n_rows),
        "v": rng.uniform(0, 100, n_rows),
    }, byte_scale=20.0))
    os_ = OperatingSystem(small_numa())
    engine = MonetDBLike(os_, catalog, byte_scale=20.0)
    engine.load()
    os_.counters.reset()
    engine.register_query(
        "q", Aggregate(Filter(Scan("fact"), gt(Col("v"), 50)), [],
                       {"n": ("count", None)}))
    return os_, engine


def test_double_start_rejected():
    os_, engine = make_engine()
    execution = engine.submit("q")
    with pytest.raises(RuntimeError):
        execution.start(2)
    os_.run_until_idle()


def test_elapsed_before_finish_rejected():
    os_, engine = make_engine()
    execution = engine.submit("q")
    with pytest.raises(RuntimeError):
        _ = execution.elapsed
    os_.run_until_idle()
    assert execution.elapsed > 0


def test_single_worker_execution():
    os_, engine = make_engine()
    os_.cpuset.set_mask([0])
    execution = engine.submit("q")
    assert len(execution.workers) == 1
    os_.run_until_idle()
    assert execution.finished


def test_mask_shrink_mid_query_still_completes():
    os_, engine = make_engine(n_rows=60_000)
    execution = engine.submit("q")
    os_.run(until=0.005)
    os_.cpuset.set_mask([0])
    os_.run_until_idle()
    assert execution.finished
    # no thread escaped the shrunken mask at the end
    busy_after = os_.counters.by_index("busy_time")
    assert busy_after  # sanity


def test_mask_grow_mid_run_spreads_concurrent_queries():
    os_, engine = make_engine(n_rows=120_000)
    os_.cpuset.set_mask([0])
    executions = [engine.submit("q") for _ in range(4)]
    os_.run(until=0.004)
    os_.cpuset.set_mask([0, 1, 2, 3])
    os_.run_until_idle()
    assert all(e.finished for e in executions)
    busy = os_.counters.by_index("busy_time")
    assert len(busy) > 1  # idle pull spread the queued queries


def test_on_done_callback_receives_execution():
    os_, engine = make_engine()
    seen = []
    engine.submit("q", client_id=42, on_done=lambda e: seen.append(e))
    os_.run_until_idle()
    assert len(seen) == 1
    assert seen[0].client_id == 42
    assert seen[0].finished


def test_worker_exit_frees_intermediates_exactly_once():
    os_, engine = make_engine()
    base_pages = sum(os_.machine.memory.placement_histogram())
    for _ in range(3):
        engine.submit("q")
    os_.run_until_idle()
    assert sum(os_.machine.memory.placement_histogram()) == base_pages
