"""Cross-product integration: every engine x every mode completes the
same workload and leaves the system consistent."""

import pytest

from repro.db.clients import repeat_stream
from repro.experiments.common import build_system

SCALE = 0.004
SIM = 0.125

ENGINES = ("monetdb", "sqlserver", "morsel")
MODES = (None, "dense", "sparse", "adaptive")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("mode", MODES)
def test_engine_mode_matrix(engine, mode):
    sut = build_system(engine=engine, mode=mode, scale=SCALE,
                       sim_scale=SIM)
    sut.mark()
    result = sut.run_clients(4, repeat_stream("q6", 2))
    assert result.queries_completed == 8
    assert sut.os.scheduler.live_threads() == 0
    # memory accounting is clean (intermediates freed)
    histogram = sut.os.machine.memory.placement_histogram()
    assert sum(histogram) > 0
    if sut.controller is not None:
        assert sut.controller.model.nalloc == len(sut.os.cpuset)
        assert 1 <= len(sut.os.cpuset) <= 16


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_agree_on_results(engine):
    """All engines compute the same q6 answer (same oracle)."""
    sut = build_system(engine=engine, scale=SCALE, sim_scale=SIM)
    profile = sut.engine.profile("q6")
    assert profile.result_rows == 1
    revenue = profile.result["revenue"][0]
    reference = build_system(engine="monetdb", scale=SCALE,
                             sim_scale=SIM).engine.profile("q6")
    assert revenue == pytest.approx(reference.result["revenue"][0])


@pytest.mark.parametrize("strategy", ("cpu_load", "ht_imc",
                                      "useful_load"))
def test_strategy_matrix(strategy):
    sut = build_system(engine="monetdb", mode="adaptive",
                       strategy=strategy, scale=SCALE, sim_scale=SIM)
    result = sut.run_clients(4, repeat_stream("sel_45pct", 2))
    assert result.queries_completed == 8
    assert sut.controller.ticks > 0
