"""Experiment harnesses: structure and key shapes at tiny parameters."""

import pytest

from repro.experiments import (fig04_microbench, fig05_migration_os,
                               fig06_tomograph, fig07_state_transitions,
                               fig13_scheduling, fig14_memory,
                               fig15_selectivity, fig16_migration_modes,
                               fig17_strategies, fig18_stable_phases,
                               fig19_mixed_phases, fig20_energy, overhead)
from repro.experiments.common import build_system, dataset_for

SCALE = 0.004
SIM = 0.125


class TestCommon:
    def test_dataset_cache_shares_instances(self):
        a = dataset_for(SCALE, SIM)
        b = dataset_for(SCALE, SIM)
        assert a is b

    def test_build_system_labels(self):
        assert build_system(scale=SCALE, sim_scale=SIM).label \
            == "monetdb/OS"
        assert build_system(mode="adaptive", scale=SCALE,
                            sim_scale=SIM).label == "monetdb/adaptive"

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            build_system(engine="oracle", scale=SCALE, sim_scale=SIM)


class TestFig04:
    def test_series_complete_and_positive(self):
        result = fig04_microbench.run(users=(1, 4), repetitions=1,
                                      scale=SCALE, sim_scale=SIM)
        assert set(result.series) == {"dense/C", "sparse/C", "os/C",
                                      "os/monetdb"}
        for variant in result.series:
            for users in (1, 4):
                assert result.throughput(variant, users) > 0

    def test_engine_moves_more_data_than_dense_kernel(self):
        result = fig04_microbench.run(users=(4,), repetitions=1,
                                      scale=SCALE, sim_scale=SIM)
        assert result.ht_mb_per_s("os/monetdb", 4) \
            > result.ht_mb_per_s("dense/C", 4)

    def test_table_renders(self):
        result = fig04_microbench.run(users=(1,), repetitions=1,
                                      scale=SCALE, sim_scale=SIM)
        assert "Fig 4" in result.table()


class TestFig05And06:
    def test_fig05_os_migrates_across_nodes(self):
        result = fig05_migration_os.run(scale=SCALE, sim_scale=SIM)
        assert result.timelines
        assert result.total_migrations > 0
        nodes = set()
        for timeline in result.timelines:
            nodes |= timeline.nodes_visited
        assert len(nodes) > 1

    def test_fig06_tomograph_structure(self):
        result = fig06_tomograph.run(scale=SCALE, sim_scale=SIM)
        assert result.n_worker_threads == 16
        # the scan operator fans out one call per worker
        assert result.calls_of("algebra.thetasubselect") == 16
        assert result.calls_of("sql.resultSet") == 1
        # the scan dominates total time
        assert result.operators[0].operator == "algebra.thetasubselect"


class TestFig07:
    def test_all_three_states_and_elasticity(self):
        result = fig07_state_transitions.run(repetitions=5, scale=SCALE,
                                             sim_scale=SIM)
        assert result.states_seen() == {"Idle", "Stable", "Overload"}
        lo, hi = result.core_range()
        assert lo == 1 and hi > 1
        # the idle tail releases back toward the minimum
        assert result.transitions[-1][3] == 1
        assert "t1-Overload-t5" in result.chains()
        assert "t0-Idle-t4" in result.chains()


class TestFig13Through15:
    def test_fig13_cells_and_steal_shape(self):
        result = fig13_scheduling.run(users=(4, 8), repetitions=2,
                                      scale=SCALE, sim_scale=SIM)
        os_cell = result.cell(None, 8)
        adaptive = result.cell("adaptive", 8)
        assert os_cell.throughput > 0
        assert adaptive.tasks > 0
        assert 0 < os_cell.cpu_load <= 100

    def test_fig14_memory_shapes(self):
        result = fig14_memory.run(n_clients=8, repetitions=2,
                                  scale=SCALE, sim_scale=SIM)
        os_cell = result.cell(None)
        adaptive = result.cell("adaptive")
        assert adaptive.ht_traffic < os_cell.ht_traffic
        assert set(os_cell.mem_tp_by_socket) == {0, 1, 2, 3}

    def test_fig15_misses_grow_with_selectivity(self):
        result = fig15_selectivity.run(levels=(0.02, 1.0), n_clients=4,
                                       scale=SCALE, sim_scale=SIM)
        for mode in (None, "adaptive"):
            assert result.total(mode, 1.0) > result.total(mode, 0.02)


class TestFig16And17:
    def test_fig16_controlled_modes_migrate_less(self):
        result = fig16_migration_modes.run(repetitions=1, warmup=2,
                                           scale=SCALE, sim_scale=SIM)
        os_cell = result.cell(None)
        for mode in ("dense", "adaptive"):
            assert result.cell(mode).migrations < os_cell.migrations
        assert result.cell("dense").nodes_used <= os_cell.nodes_used

    def test_fig17_traffic_reduction(self):
        result = fig17_strategies.run(repetitions=2, warmup=3,
                                      scale=SCALE, sim_scale=SIM)
        os_cell = result.cell(None)
        adaptive = result.cell("adaptive", "cpu_load")
        assert adaptive.ht_bytes < os_cell.ht_bytes
        # both strategies produce cells
        assert result.cell("dense", "ht_imc").response_time > 0


class TestFig18Through20:
    def test_fig18_timelines(self):
        result = fig18_stable_phases.run(
            n_clients=4, scale=SCALE, sim_scale=SIM,
            queries=["q6", "q13", "q14"])
        assert len(result.timelines) == 4
        monetdb_os = result.timelines["monetdb/OS"]
        assert monetdb_os.samples
        # MonetDB's loader socket dominates its traffic
        share = monetdb_os.socket_share()
        assert share[0] == max(share.values())
        # SQL Server spreads across sockets
        sql_share = result.timelines["sqlserver/OS"].socket_share()
        assert max(sql_share.values()) < 0.5

    def test_fig19_speedups_and_ratios(self):
        result = fig19_mixed_phases.run(
            engine="monetdb", n_clients=4, queries_per_client=2,
            scale=SCALE, sim_scale=SIM, modes=(None, "adaptive"))
        assert result.runs["OS"].mean_latency
        assert result.mean_speedup() > 0
        rows = result.rows()
        assert rows and all(len(row) == 6 for row in rows)

    def test_fig20_energy_attribution(self):
        result = fig20_energy.run(n_clients=4, queries_per_client=2,
                                  scale=SCALE, sim_scale=SIM)
        assert result.os_energy
        total = sum(e.total for e in result.os_energy.values())
        assert total > 0
        assert -1.0 < result.total_saving() < 1.0


class TestOverhead:
    def test_pipeline_pass_is_fast_and_cheap(self):
        result = overhead.run(passes=20, scale=SCALE)
        for mode in ("dense", "sparse", "adaptive"):
            assert result.per_pass[mode] < 0.005  # well under a tick
            assert result.cpu_share(mode) < 0.5
