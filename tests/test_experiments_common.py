"""The shared experiment harness plumbing."""

import pytest

from repro.analysis.timeline import render_core_map, render_node_map
from repro.db.clients import repeat_stream
from repro.experiments.common import build_system, run_phased_workload
from repro.experiments.fig05_migration_os import collect_timelines

SCALE = 0.004
SIM = 0.125


def test_mark_and_delta():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    sut.mark()
    assert sut.delta("busy_time") == 0.0
    sut.run_clients(2, repeat_stream("q6", 1))
    assert sut.delta("busy_time") > 0
    by_core = sut.delta_by_index("busy_time")
    assert sum(by_core.values()) == pytest.approx(
        sut.delta("busy_time"))


def test_delta_without_mark_is_total():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    sut.run_clients(1, repeat_stream("q6", 1))
    assert sut.delta("busy_time") == \
        sut.os.counters.total("busy_time")


def test_ht_imc_ratio_bounds():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    sut.mark()
    assert sut.ht_imc_ratio() == 0.0   # nothing ran yet
    sut.run_clients(2, repeat_stream("q6", 1))
    assert 0.0 <= sut.ht_imc_ratio() <= 1.0


def test_run_phases_protocol():
    sut = build_system(mode="dense", scale=SCALE, sim_scale=SIM)
    results = sut.run_phases(["q6", "q13"], n_clients=2)
    assert len(results) == 2
    assert all(r.queries_completed == 2 for r in results)


def test_run_phased_workload_helper():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    makespan, completed = run_phased_workload(sut, ["q6", "q14"], 2)
    assert completed == 4
    assert makespan > 0


def test_labels_cover_every_engine():
    for engine in ("monetdb", "sqlserver", "morsel"):
        sut = build_system(engine=engine, scale=SCALE, sim_scale=SIM,
                           register="none")
        assert sut.label == f"{engine}/OS"


def test_register_none_leaves_registry_empty():
    sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
    assert sut.engine.query_names() == []


def test_bad_register_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        build_system(scale=SCALE, sim_scale=SIM, register="everything")


def test_timeline_rendering_of_a_real_trace():
    sut = build_system(scale=SCALE, sim_scale=SIM,
                       record_placements=True)
    sut.run_clients(1, repeat_stream("q6", 1))
    timelines = collect_timelines(sut)
    assert timelines
    node_map = render_node_map(timelines, width=40, title="Fig5")
    core_map = render_core_map(timelines, width=40)
    assert node_map.splitlines()[0] == "Fig5"
    assert len(node_map.splitlines()) == len(timelines) + 2
    assert len(core_map.splitlines()) == len(timelines) + 1
