"""Extension: two concurrent controllers on one simulated machine."""

from repro.experiments import ext_multi_tenant
from repro.obs import Recorder, install, uninstall


def run_small():
    return ext_multi_tenant.run(n_clients=3, repetitions=1,
                                scale=0.004, sim_scale=0.125)


def test_two_tenants_complete_without_overlap():
    result = run_small()
    assert result.overlap_violations == 0
    assert result.samples
    assert set(result.cells) == {"volcano", "numa"}
    for cell in result.cells.values():
        assert cell.throughput > 0
        assert cell.ticks > 0
        assert cell.max_cores >= 1
    assert "overlap violations: 0" in result.table()


def test_provenance_is_attributable_per_tenant():
    recorder = Recorder()
    install(recorder)
    try:
        run_small()
    finally:
        uninstall()
    tenants = {d.tenant for d in recorder.decisions.all()}
    assert tenants == {"volcano", "numa"}
    # both controllers changed their masks, and each record names its
    # tenant — the `repro explain --tenant` contract
    for tenant in tenants:
        changed = [d for d in recorder.decisions.all()
                   if d.tenant == tenant and d.action is not None]
        assert changed
    # per-tenant metric namespaces exist side by side
    names = {e["name"] for e in recorder.metrics.snapshot()}
    assert "controller.volcano.ticks" in names
    assert "controller.numa.ticks" in names
    assert "cpuset.volcano.allowed_cores" in names
