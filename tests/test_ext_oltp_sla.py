"""Extensions: index lookups, unmanaged threads, OLTP workload, SLA."""

import pytest

from repro.config import EngineConfig, MachineConfig
from repro.core.monitor import MonitorSample
from repro.core.sla import SlaGovernor
from repro.core.strategies import CpuLoadStrategy
from repro.db.engine import DatabaseEngine
from repro.db.operators import IndexLookup, relation_rows
from repro.db.plan import profile_query
from repro.errors import ConfigError, WorkloadError
from repro.experiments.common import build_system
from repro.opsys.loadstats import LoadSample
from repro.opsys.workitem import ListWorkSource, WorkItem
from repro.workloads.oltp import (oltp_stream, point_lookup,
                                  point_query_names,
                                  register_point_queries)

SCALE = 0.004
SIM = 0.125


class TestIndexLookup:
    def test_real_execution_matches_filter(self, tiny_dataset):
        catalog = tiny_dataset.catalog()
        node = IndexLookup("orders", "o_orderkey", 5,
                           keep=["o_orderkey", "o_custkey"])
        rel = node.evaluate(catalog)
        assert relation_rows(rel) == 1
        assert rel["o_orderkey"][0] == 5

    def test_missing_key_gives_empty(self, tiny_dataset):
        catalog = tiny_dataset.catalog()
        node = IndexLookup("orders", "o_orderkey", 10**9)
        assert relation_rows(node.evaluate(catalog)) == 0
        assert node.match_fraction(catalog) == 0.0

    def test_profile_touches_few_pages(self, tiny_dataset):
        sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
        node = point_lookup(3)
        profile = profile_query(node, sut.engine.catalog, "pl",
                                sut.dataset.byte_scale)
        lookup_stages = [s for s in profile.stages
                         if s.label == "index.lookup"]
        assert len(lookup_stages) == 2
        for stage in lookup_stages:
            assert not stage.parallel
            assert stage.point_reads
            assert not stage.base_reads

    def test_point_query_is_orders_of_magnitude_cheaper(self):
        from repro.workloads.tpch.queries import q6

        sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
        scan_profile = profile_query(q6(), sut.engine.catalog, "q6",
                                     sut.dataset.byte_scale)
        point_profile = profile_query(
            point_lookup(3), sut.engine.catalog, "pl",
            sut.dataset.byte_scale)
        assert point_profile.total_cycles < scan_profile.total_cycles / 50


class TestOltpWorkload:
    def test_point_query_names_deterministic(self):
        a = point_query_names(5, 100, seed=1)
        b = point_query_names(5, 100, seed=1)
        assert a == b
        assert all(1 <= key <= 100 for _, key in a)

    def test_register_and_stream(self):
        sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
        engine = DatabaseEngine(
            sut.os, sut.engine.catalog, sut.dataset.byte_scale,
            EngineConfig(managed_threads=False, max_workers=1),
            name="oltp")
        names = register_point_queries(engine, n_distinct=4)
        assert len(names) == 4
        stream = oltp_stream(names, 6)
        assert len(stream(0)) == 6
        assert set(stream(0)) <= set(names)

    def test_stream_validation(self):
        with pytest.raises(WorkloadError):
            oltp_stream([], 5)
        with pytest.raises(WorkloadError):
            oltp_stream(["a"], 0)
        with pytest.raises(WorkloadError):
            point_lookup(0)

    def test_max_workers_bounds_point_queries(self):
        sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
        engine = DatabaseEngine(
            sut.os, sut.engine.catalog, sut.dataset.byte_scale,
            EngineConfig(managed_threads=False, max_workers=1),
            name="oltp")
        assert engine.worker_count() == 1


class TestUnmanagedThreads:
    def test_unmanaged_threads_ignore_the_mask(self):
        sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
        sut.os.cpuset.set_mask([0])
        pages = list(sut.os.machine.memory.allocate(8))
        for page in pages:
            sut.os.machine.memory.place(page, 1)
        threads = [sut.os.spawn_thread(
            ListWorkSource([WorkItem("app", reads=pages, cycles=1e7)]),
            managed=False) for _ in range(4)]
        cores = {t.core for t in threads}
        assert any(core != 0 for core in cores)
        sut.os.run_until_idle()
        busy = sut.os.counters.by_index("busy_time")
        assert any(core != 0 for core in busy)

    def test_managed_threads_respect_the_mask(self):
        sut = build_system(scale=SCALE, sim_scale=SIM, register="none")
        sut.os.cpuset.set_mask([0])
        pages = list(sut.os.machine.memory.allocate(8))
        for page in pages:
            sut.os.machine.memory.place(page, 0)
        for _ in range(3):
            sut.os.spawn_thread(ListWorkSource(
                [WorkItem("db", reads=pages, cycles=1e7)]))
        sut.os.run_until_idle()
        busy = sut.os.counters.by_index("busy_time")
        assert set(busy) == {0}


def _sample(busy=50.0, ht=0.0, window=1.0):
    cores = tuple(range(16))
    load = LoadSample(time=1.0, window=window,
                      per_core_busy={c: busy for c in cores},
                      per_core_useful={c: busy * 0.8 for c in cores},
                      allocated_cores=cores)
    return MonitorSample(time=1.0, window=window, load=load,
                         ht_bytes=ht, imc_bytes=ht * 2 + 1,
                         l3_misses=0.0, runnable_threads=32,
                         n_allocated=16)


class TestSlaGovernor:
    def test_requires_a_budget(self):
        with pytest.raises(ConfigError):
            SlaGovernor(CpuLoadStrategy())
        with pytest.raises(ConfigError):
            SlaGovernor(CpuLoadStrategy(), traffic_budget=-1)
        with pytest.raises(ConfigError):
            SlaGovernor(CpuLoadStrategy(), power_budget=100)  # no machine

    def test_defers_to_base_within_budget(self):
        governor = SlaGovernor(CpuLoadStrategy(), traffic_budget=1e9)
        sample = _sample(busy=50.0, ht=1e8)  # 0.1 GB/s << budget
        assert governor.metric(sample) == 50.0
        assert governor.violations == 0

    def test_violation_forces_idle(self):
        governor = SlaGovernor(CpuLoadStrategy(), traffic_budget=1e9)
        sample = _sample(busy=99.0, ht=2e9)  # 2 GB/s over 1 GB/s budget
        assert governor.metric(sample) == governor.th_min
        assert governor.violations == 1

    def test_headroom_clamps_growth(self):
        governor = SlaGovernor(CpuLoadStrategy(), traffic_budget=1e9,
                               headroom=0.8)
        sample = _sample(busy=99.0, ht=0.9e9)  # 90 % of budget, overload
        metric = governor.metric(sample)
        assert governor.th_min < metric < governor.th_max
        assert governor.clamps == 1

    def test_power_budget_uses_energy_model(self):
        machine = MachineConfig()
        governor = SlaGovernor(CpuLoadStrategy(), machine=machine,
                               power_budget=10.0)  # absurdly low cap
        sample = _sample(busy=99.0, ht=0.0)
        assert governor.metric(sample) == governor.th_min
        estimate = governor.power_estimate(_sample(busy=0.0))
        idle_floor = (machine.n_sockets * machine.acp_watts
                      * machine.idle_power_fraction)
        assert estimate == pytest.approx(idle_floor, rel=0.01)
