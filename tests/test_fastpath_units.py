"""Unit tests for the fast-path kernel's supporting structures.

Micro-regressions for the hot-path rewrite: the O(1) live-event counter
and timer re-arming in the simulator, the module-level ``AccessResult``
import in the scheduler, the incrementally maintained per-core load
aggregate, the cpuset bitmask caches and batch page placement.
"""

from __future__ import annotations

import dis

import pytest

from repro.errors import AllocationError, HardwareError, SimulationError
from repro.hardware.prebuilt import opteron_8387
from repro.opsys.cpuset import CpuSet
from repro.opsys.scheduler import Scheduler
from repro.opsys.system import OperatingSystem
from repro.sim.engine import Simulator


# ---------------------------------------------------------------------
# O(1) pending + lazy cancel


def test_pending_tracks_schedule_cancel_and_delivery():
    sim = Simulator()
    events = [sim.schedule(i * 0.1, lambda: None) for i in range(5)]
    assert sim.pending() == 5
    sim.cancel(events[2])
    assert sim.pending() == 4
    # double-cancel is a no-op, exactly like the seed's flag write
    sim.cancel(events[2])
    assert sim.pending() == 4
    assert sim.step()
    assert sim.pending() == 3
    sim.run()
    assert sim.pending() == 0


def test_cancel_after_delivery_is_a_noop():
    sim = Simulator()
    event = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    assert sim.step()
    # the seed popped the event off the heap, so a late cancel never
    # affected pending(); the counter must behave the same
    sim.cancel(event)
    assert sim.pending() == 1


# ---------------------------------------------------------------------
# reschedule (timer re-arming)


def test_reschedule_revives_a_cancelled_event():
    sim = Simulator()
    log = []
    event = sim.schedule(0.1, lambda: log.append(sim.now))
    sim.cancel(event)
    assert sim.pending() == 0
    revived = sim.reschedule(event, 0.3)
    assert sim.pending() == 1
    sim.run()
    assert log == [0.3]
    assert revived.delivered


def test_cancel_then_reschedule_then_cancel_again():
    """The cancel-then-reschedule edge case: flags fully reset."""
    sim = Simulator()
    log = []
    event = sim.schedule(0.1, lambda: log.append("fired"))
    sim.cancel(event)
    # a cancelled cell is still queued at its old key, so revival hands
    # back a fresh cell; the caller must track the returned event
    revived = sim.reschedule(event, 0.2)
    assert revived is not event
    sim.cancel(revived)
    assert sim.pending() == 0
    sim.run()
    assert log == []


def test_reschedule_after_delivery_rearms_the_same_cell():
    sim = Simulator()
    log = []

    def tick():
        log.append(sim.now)
        if len(log) < 3:
            sim.reschedule(event, 0.5)

    event = sim.schedule(0.5, tick)
    sim.run()
    assert log == [0.5, 1.0, 1.5]


def test_reschedule_of_a_live_event_is_rejected():
    sim = Simulator()
    event = sim.schedule(0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(event, 0.2)


def test_reschedule_negative_delay_is_rejected():
    sim = Simulator()
    event = sim.schedule(0.1, lambda: None)
    sim.cancel(event)
    with pytest.raises(SimulationError):
        sim.reschedule(event, -0.1)


# ---------------------------------------------------------------------
# scheduler fast path


def _opnames(fn):
    return {instruction.opname for instruction in dis.get_instructions(fn)}


def test_merge_access_does_not_import_in_the_hot_path():
    """AccessResult is imported at module level, not per merge call."""
    from repro.opsys.scheduler import _merge_access

    assert "IMPORT_NAME" not in _opnames(_merge_access)


def test_execute_does_not_import_in_the_hot_path():
    assert "IMPORT_NAME" not in _opnames(Scheduler._execute)


def test_incremental_load_matches_recomputed_load():
    """``_load`` equals queue depth + running occupancy at probe points."""
    os_ = OperatingSystem(opteron_8387())
    scheduler = os_.scheduler

    def recompute(core):
        return (len(scheduler._queues[core])
                + (scheduler._running[core] is not None))

    def probe():
        for core in range(os_.topology.n_cores):
            assert scheduler.core_load(core) == recompute(core), \
                f"core {core} load drifted"

    # probe while threads are being dispatched, executed and retired
    for delay in (0.0001, 0.001, 0.01, 0.1):
        os_.sim.schedule(delay, probe)
    from repro.opsys.workitem import ListWorkSource, WorkItem

    pages = os_.machine.memory.allocate(64)
    source = ListWorkSource([
        WorkItem(f"item{i}", reads=pages, cycles=5_000.0)
        for i in range(8)])
    for i in range(4):
        os_.spawn_thread(source, name=f"w{i}")
    os_.sim.run_until_idle()
    probe()
    assert scheduler.runnable_threads(None) == sum(
        scheduler.core_load(c) for c in range(os_.topology.n_cores))


# ---------------------------------------------------------------------
# cpuset bitmask caches


def test_cpuset_mask_and_tuple_stay_in_sync():
    cpuset = CpuSet(8, initial=(0, 3, 5))
    assert cpuset.allowed_mask() == (1 | 1 << 3 | 1 << 5)
    assert cpuset.allowed_tuple() == (0, 3, 5)
    cpuset.allow(1)
    assert cpuset.allowed_tuple() == (0, 1, 3, 5)
    assert cpuset.is_allowed(1)
    cpuset.disallow(3)
    assert cpuset.allowed_tuple() == (0, 1, 5)
    assert not cpuset.is_allowed(3)
    cpuset.set_mask({2, 6})
    assert cpuset.allowed_mask() == (1 << 2 | 1 << 6)
    assert cpuset.allowed_tuple() == (2, 6)
    assert cpuset.allowed_sorted() == [2, 6]
    with pytest.raises(AllocationError):
        cpuset.set_mask(())


# ---------------------------------------------------------------------
# batch placement


def test_place_batch_matches_place_semantics():
    from repro.hardware.machine import Machine

    machine = Machine()
    memory = machine.memory
    pages = list(memory.allocate(6))
    memory.place_batch(pages[:3], 1)
    assert all(memory.home(p) == 1 for p in pages[:3])
    assert memory.pages_on_node(1) == 3
    with pytest.raises(HardwareError):
        memory.place_batch([pages[0]], 0)  # already placed
    with pytest.raises(HardwareError):
        memory.place_batch([pages[3], pages[3]], 0)  # duplicate
    # the batch aborts mid-way but occupancy still covers what landed
    assert memory.home(pages[3]) == 0
    assert memory.pages_on_node(0) == 1
    with pytest.raises(HardwareError):
        memory.place_batch([10_000_000], 0)  # never allocated
    with pytest.raises(HardwareError):
        memory.place_batch(pages[4:], 99)  # node out of range
