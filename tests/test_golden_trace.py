"""Golden-trace regression: the control-plane stays bit-identical.

The control-plane refactor (staged Sense -> Decide -> Plan -> Actuate
pipeline, core-lease inventory) promises that single-tenant behaviour is
preserved *exactly*: the deterministic trace a figure harness exports is
byte-identical before and after.  These tests pin that promise: fixture
traces under ``tests/fixtures/golden/`` were recorded on the pre-refactor
controller, and every run of fig07 / fig16 must still serialise to the
same bytes.

Regenerate (only when a trace change is *intended* and reviewed)::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import (fig07_state_transitions,
                               fig13_scheduling,
                               fig16_migration_modes)
from repro.sim.export import dump_records, load_records

GOLDEN_DIR = pathlib.Path(__file__).parent / "fixtures" / "golden"

#: harness parameters are part of the fixture contract; change them only
#: together with a regeneration
FIG07_PARAMS = dict(repetitions=3, scale=0.01, sim_scale=1.0,
                    mode="adaptive", idle_tail=0.2)
FIG13_PARAMS = dict(mode="adaptive", users=4, repetitions=2, scale=0.01,
                    sim_scale=1.0)
FIG16_PARAMS = dict(repetitions=1, warmup=1, scale=0.01, sim_scale=1.0)

_REGEN = os.environ.get("GOLDEN_REGEN") == "1"


def _trace_bytes(records, tmp_path: pathlib.Path) -> bytes:
    path = tmp_path / "trace.jsonl"
    dump_records(records, path)
    return path.read_bytes()


def _check(records, fixture: pathlib.Path, tmp_path: pathlib.Path) -> None:
    exported = _trace_bytes(records, tmp_path)
    if _REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        fixture.write_bytes(exported)
        pytest.skip(f"regenerated {fixture.name}")
    if not fixture.exists():
        pytest.fail(f"golden fixture {fixture} missing; "
                    f"run with GOLDEN_REGEN=1 to record it")
    golden = fixture.read_bytes()
    if exported != golden:
        # byte-compare first (the contract), then diff record-wise for a
        # digestible failure message
        new = records
        old = load_records(fixture)
        detail = f"{len(old)} golden vs {len(new)} exported records"
        for i, (a, b) in enumerate(zip(old, new)):
            if a != b:
                detail += f"; first divergence at record {i}: {a} != {b}"
                break
        pytest.fail(f"{fixture.name}: exported trace diverged from the "
                    f"golden fixture ({detail})")


def test_fig07_trace_is_golden(tmp_path):
    result = fig07_state_transitions.run(**FIG07_PARAMS)
    assert result.records, "fig07 harness exported no records"
    _check(result.records, GOLDEN_DIR / "fig07_trace.jsonl", tmp_path)


def test_fig13_trace_is_golden(tmp_path):
    _, records = fig13_scheduling.run_traced(**FIG13_PARAMS)
    assert records, "fig13 harness exported no records"
    _check(records, GOLDEN_DIR / "fig13_trace.jsonl", tmp_path)


def test_fig16_trace_is_golden(tmp_path):
    result = fig16_migration_modes.run(**FIG16_PARAMS)
    records = [r for cell in result.cells.values() for r in cell.records]
    assert records, "fig16 harness exported no records"
    _check(records, GOLDEN_DIR / "fig16_trace.jsonl", tmp_path)
