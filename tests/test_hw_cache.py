"""Shared L3 model: LRU behaviour, eviction, statistics."""

import pytest

from repro.errors import HardwareError
from repro.hardware.cache import SharedCache


def test_miss_then_hit():
    cache = SharedCache(capacity_pages=4)
    assert cache.access(1) is False
    assert cache.access(1) is True
    assert cache.hits == 1
    assert cache.misses == 1


def test_eviction_is_lru():
    cache = SharedCache(capacity_pages=2)
    cache.access(1)
    cache.access(2)
    cache.access(1)          # 1 is now more recent than 2
    cache.access(3)          # evicts 2
    assert 1 in cache
    assert 3 in cache
    assert 2 not in cache
    assert cache.evictions == 1


def test_capacity_never_exceeded():
    cache = SharedCache(capacity_pages=3)
    for page in range(10):
        cache.access(page)
    assert len(cache) == 3


def test_access_many_counts():
    cache = SharedCache(capacity_pages=8)
    hits, misses = cache.access_many([1, 2, 3, 1, 2])
    assert (hits, misses) == (2, 3)


def test_invalidate_drops_named_pages():
    cache = SharedCache(capacity_pages=4)
    cache.access_many([1, 2, 3])
    dropped = cache.invalidate([2, 99])
    assert dropped == 1
    assert 2 not in cache
    assert 1 in cache


def test_flush_empties():
    cache = SharedCache(capacity_pages=4)
    cache.access_many([1, 2, 3])
    cache.flush()
    assert len(cache) == 0
    # stats survive a flush
    assert cache.misses == 3


def test_resident_order_cold_to_hot():
    cache = SharedCache(capacity_pages=4)
    cache.access_many([1, 2, 3])
    cache.access(1)
    assert cache.resident_pages() == [2, 3, 1]


def test_occupancy_and_hit_ratio():
    cache = SharedCache(capacity_pages=4)
    assert cache.hit_ratio() == 0.0
    cache.access_many([1, 2, 1, 2])
    assert cache.occupancy == pytest.approx(0.5)
    assert cache.hit_ratio() == pytest.approx(0.5)


def test_zero_capacity_rejected():
    with pytest.raises(HardwareError):
        SharedCache(capacity_pages=0)
