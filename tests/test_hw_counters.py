"""Counter bank and snapshots: totals, deltas, rates."""

import pytest

from repro.hardware.counters import CounterBank


@pytest.fixture
def bank():
    return CounterBank()


def test_add_and_get(bank):
    bank.add("l3_miss", 0, 5)
    bank.add("l3_miss", 0, 2)
    assert bank.get("l3_miss", 0) == 7
    assert bank.get("l3_miss", 1) == 0


def test_increment(bank):
    bank.increment("tasks", 3)
    bank.increment("tasks", 3)
    assert bank.get("tasks", 3) == 2


def test_total_sums_family(bank):
    bank.add("imc_bytes", 0, 10)
    bank.add("imc_bytes", 1, 20)
    bank.add("ht_tx_bytes", 0, 99)
    assert bank.total("imc_bytes") == 30


def test_by_index(bank):
    bank.add("busy_time", 0, 1.5)
    bank.add("busy_time", 2, 0.5)
    assert bank.by_index("busy_time") == {0: 1.5, 2: 0.5}


def test_string_indices_for_query_attribution(bank):
    bank.add("query_ht_bytes", "q6", 4096)
    assert bank.get("query_ht_bytes", "q6") == 4096
    assert bank.total("query_ht_bytes") == 4096


def test_reset_zeroes_everything(bank):
    bank.add("l3_miss", 0, 5)
    bank.reset()
    assert bank.total("l3_miss") == 0


def test_snapshot_is_immutable_copy(bank):
    bank.add("l3_miss", 0, 5)
    snap = bank.snapshot(1.0)
    bank.add("l3_miss", 0, 5)
    assert snap.get("l3_miss", 0) == 5
    assert bank.get("l3_miss", 0) == 10


def test_snapshot_delta_and_rate(bank):
    bank.add("imc_bytes", 0, 100)
    early = bank.snapshot(1.0)
    bank.add("imc_bytes", 0, 300)
    late = bank.snapshot(3.0)
    assert late.delta(early, "imc_bytes", 0) == 300
    assert late.rate(early, "imc_bytes", 0) == pytest.approx(150.0)


def test_snapshot_family_delta_and_rate(bank):
    bank.add("imc_bytes", 0, 100)
    bank.add("imc_bytes", 1, 100)
    early = bank.snapshot(0.0)
    bank.add("imc_bytes", 1, 100)
    late = bank.snapshot(2.0)
    assert late.delta_total(early, "imc_bytes") == 100
    assert late.rate_total(early, "imc_bytes") == pytest.approx(50.0)


def test_zero_window_rate_is_zero(bank):
    early = bank.snapshot(1.0)
    late = bank.snapshot(1.0)
    assert late.rate(early, "anything") == 0.0


# ---------------------------------------------------------------------
# family isolation: the array-backed layout's complexity contract


class _Landmine:
    """Stands in for another family's storage; detonates if touched.

    The flat ``(name, index) -> float`` dict layout this bank replaced
    had to scan *every* counter on ``total()``/``by_index()``.  Planting
    an unreadable object as an unrelated family's value store proves the
    reductions now touch only the requested family.
    """

    def __iter__(self):
        raise AssertionError("reduction touched an unrelated family")

    def __len__(self):
        raise AssertionError("reduction touched an unrelated family")

    def __getitem__(self, _):
        raise AssertionError("reduction touched an unrelated family")


def test_total_reads_only_the_requested_family(bank):
    bank.add("busy_time", 3, 1.5)
    bank.add("busy_time", 7, 2.5)
    for noise in range(20):
        bank.family(f"noise_{noise}").values = _Landmine()
    assert bank.total("busy_time") == 4.0
    assert bank.get("busy_time", 7) == 2.5


def test_by_index_reads_only_the_requested_family(bank):
    bank.add("l3_miss", 0, 5.0)
    bank.add("l3_miss", 2, 7.0)
    for noise in range(20):
        bank.family(f"noise_{noise}").values = _Landmine()
    assert bank.by_index("l3_miss") == {0: 5.0, 2: 7.0}


def test_family_handle_survives_reset_and_keeps_slot_order(bank):
    handle = bank.family("busy_time")
    handle.add(9, 1.0)
    handle.add(4, 2.0)
    assert list(bank.family_slots("busy_time")) == [9, 4]
    bank.reset()
    assert bank.total("busy_time") == 0.0
    # the same handle keeps writing into the (fresh) family storage
    handle.add(4, 3.0)
    assert bank.get("busy_time", 4) == 3.0
    assert list(bank.family_slots("busy_time")) == [4]


def test_reset_leaves_earlier_snapshots_intact(bank):
    bank.add("l3_miss", 1, 5.0)
    snap = bank.snapshot(1.0)
    bank.reset()
    bank.add("l3_miss", 2, 9.0)
    # the pre-reset snapshot still reads the old slot layout and values
    assert snap.get("l3_miss", 1) == 5.0
    assert snap.by_index("l3_miss") == {1: 5.0}
    assert bank.by_index("l3_miss") == {2: 9.0}
