"""Energy model: ACP-based CPU energy and HT energy per bit."""

import pytest

from repro.config import MachineConfig
from repro.hardware.counters import CounterBank
from repro.hardware.energy import EnergyModel
from repro.hardware.topology import Topology


@pytest.fixture
def setup():
    config = MachineConfig(n_sockets=2, cores_per_socket=2,
                           acp_watts=100.0, idle_power_fraction=0.5,
                           ht_joules_per_bit=1e-12)
    return config, Topology(config), EnergyModel(config)


def test_idle_machine_draws_idle_floor(setup):
    config, topo, model = setup
    energy = model.cpu_energy({}, elapsed=10.0, topology=topo)
    # 2 sockets x 50 W idle x 10 s
    assert energy == pytest.approx(1000.0)


def test_fully_busy_machine_draws_acp(setup):
    config, topo, model = setup
    busy = {core: 10.0 for core in topo.all_cores()}
    energy = model.cpu_energy(busy, elapsed=10.0, topology=topo)
    assert energy == pytest.approx(2 * 100.0 * 10.0)


def test_half_busy_is_between(setup):
    config, topo, model = setup
    busy = {0: 10.0, 1: 10.0}  # node 0 fully busy, node 1 idle
    energy = model.cpu_energy(busy, elapsed=10.0, topology=topo)
    assert energy == pytest.approx(100.0 * 10 + 50.0 * 10)


def test_utilisation_clamped_at_one(setup):
    config, topo, model = setup
    busy = {core: 100.0 for core in topo.all_cores()}  # > elapsed
    energy = model.cpu_energy(busy, elapsed=10.0, topology=topo)
    assert energy == pytest.approx(2 * 100.0 * 10.0)


def test_zero_elapsed_zero_energy(setup):
    _, topo, model = setup
    assert model.cpu_energy({}, elapsed=0.0, topology=topo) == 0.0


def test_ht_energy_per_bit(setup):
    _, _, model = setup
    # 1000 bytes = 8000 bits at 1e-12 J/bit
    assert model.ht_energy(1000) == pytest.approx(8e-9)
    assert model.ht_energy(0) == 0.0
    assert model.ht_energy(-5) == 0.0


def test_report_between_snapshots(setup):
    config, topo, model = setup
    bank = CounterBank()
    start = bank.snapshot(0.0)
    bank.add("busy_time", 0, 5.0)
    bank.add("ht_tx_bytes", 0, 1_000_000)
    end = bank.snapshot(10.0)
    report = model.report(start, end, topo)
    assert report.cpu_joules > 0
    assert report.ht_joules == pytest.approx(8_000_000 * 1e-12)
    assert report.total_joules == pytest.approx(
        report.cpu_joules + report.ht_joules)
