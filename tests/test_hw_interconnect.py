"""Interconnect: FIFO channels, link traffic accounting."""

import pytest

from repro.config import MachineConfig
from repro.errors import HardwareError
from repro.hardware.counters import CounterBank
from repro.hardware.interconnect import FifoChannel, Interconnect
from repro.hardware.topology import Topology


@pytest.fixture
def fabric():
    topo = Topology(MachineConfig(n_sockets=4, cores_per_socket=4))
    return Interconnect(topo, CounterBank())


class TestFifoChannel:
    def test_uncontended_service_time(self):
        channel = FifoChannel(bandwidth=1000.0)
        done = channel.reserve(0.0, 500)
        assert done == pytest.approx(0.5)

    def test_back_to_back_requests_queue(self):
        channel = FifoChannel(bandwidth=1000.0)
        first = channel.reserve(0.0, 1000)
        second = channel.reserve(0.0, 1000)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_gap_resets_start(self):
        channel = FifoChannel(bandwidth=1000.0)
        channel.reserve(0.0, 100)
        done = channel.reserve(5.0, 100)
        assert done == pytest.approx(5.1)

    def test_aggregate_throughput_is_hard_capped(self):
        channel = FifoChannel(bandwidth=1000.0)
        last = 0.0
        for _ in range(10):
            last = channel.reserve(0.0, 1000)
        # ten 1-second requests cannot finish before t=10
        assert last == pytest.approx(10.0)

    def test_backlog_measures_queued_work(self):
        channel = FifoChannel(bandwidth=1000.0)
        channel.reserve(0.0, 2000)
        assert channel.backlog(0.0) == pytest.approx(2.0)
        assert channel.backlog(1.5) == pytest.approx(0.5)
        assert channel.backlog(9.0) == 0.0

    def test_negative_bytes_rejected(self):
        channel = FifoChannel(bandwidth=1000.0)
        with pytest.raises(HardwareError):
            channel.reserve(0.0, -1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(HardwareError):
            FifoChannel(bandwidth=0.0)


class TestInterconnect:
    def test_transfer_records_sender_counter(self, fabric):
        fabric.transfer(0.0, 2, 0, 4096)
        assert fabric.counters.get("ht_tx_bytes", 2) == 4096
        assert fabric.counters.get("ht_tx_bytes", 0) == 0

    def test_transfer_returns_completion_time(self, fabric):
        done = fabric.transfer(0.0, 0, 1, int(fabric.link_bandwidth))
        assert done == pytest.approx(1.0)

    def test_links_are_independent(self, fabric):
        size = int(fabric.link_bandwidth)
        done_a = fabric.transfer(0.0, 0, 1, size)
        done_b = fabric.transfer(0.0, 2, 3, size)
        assert done_a == pytest.approx(1.0)
        assert done_b == pytest.approx(1.0)

    def test_same_link_serialises(self, fabric):
        size = int(fabric.link_bandwidth)
        fabric.transfer(0.0, 0, 1, size)
        done = fabric.transfer(0.0, 0, 1, size)
        assert done == pytest.approx(2.0)

    def test_local_transfer_rejected(self, fabric):
        with pytest.raises(HardwareError):
            fabric.transfer(0.0, 1, 1, 64)

    def test_total_and_per_node_traffic(self, fabric):
        fabric.transfer(0.0, 0, 1, 100)
        fabric.transfer(0.0, 0, 2, 50)
        assert fabric.total_traffic() == 150
        assert fabric.traffic_by_node()[0] == 150

    def test_backlog_sums_all_links(self, fabric):
        size = int(fabric.link_bandwidth)
        fabric.transfer(0.0, 0, 1, size)
        fabric.transfer(0.0, 1, 0, size)
        assert fabric.backlog(0.0) == pytest.approx(2.0)

    def test_unknown_link_rejected(self, fabric):
        with pytest.raises(HardwareError):
            fabric.link(1, 1)
