"""Write invalidations: coherence between sockets' shared caches."""

import pytest

from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa


@pytest.fixture
def machine():
    return Machine(small_numa())


def _place(machine, n_pages, node):
    pages = list(machine.memory.allocate(n_pages))
    for page in pages:
        machine.memory.place(page, node)
    return pages


def test_write_invalidates_remote_residency(machine):
    pages = _place(machine, 3, node=0)
    other_core = machine.topology.cores_of_node(1)[0]
    machine.touch(0.0, other_core, pages)          # resident in L3 of 1
    assert all(p in machine.caches[1] for p in pages)
    machine.touch_write(0.0, 0, pages)             # write from socket 0
    assert all(p not in machine.caches[1] for p in pages)
    assert machine.counters.get("l3_invalidations", 1) == 3


def test_write_keeps_local_residency(machine):
    pages = _place(machine, 2, node=0)
    machine.touch_write(0.0, 0, pages)
    assert all(p in machine.caches[0] for p in pages)
    assert machine.counters.total("l3_invalidations") == 0


def test_write_counts_like_a_touch(machine):
    pages = _place(machine, 2, node=1)
    result = machine.touch_write(0.0, 0, pages)
    assert result.remote_misses == 2
    assert machine.counters.get("ht_tx_bytes", 1) > 0


def test_invalidations_surface_under_migration_workload():
    """A writer bouncing between sockets invalidates its own output."""
    from repro.opsys.system import OperatingSystem
    from repro.opsys.workitem import ListWorkSource, WorkItem

    os_ = OperatingSystem(small_numa())
    reads = list(os_.machine.memory.allocate(8))
    for page in reads:
        os_.machine.memory.place(page, 0)
    writes = list(os_.machine.memory.allocate(8))
    # one item writing the pages from socket 0, then another rewriting
    # them from socket 1 after socket 0 cached them
    os_.spawn_thread(ListWorkSource(
        [WorkItem("w0", reads=reads, writes=writes, cycles=1e6)]),
        pinned_core=0)
    os_.run_until_idle()
    os_.spawn_thread(ListWorkSource(
        [WorkItem("w1", reads=list(writes), writes=list(writes),
                  cycles=1e6)]),
        pinned_core=os_.topology.cores_of_node(1)[0])
    os_.run_until_idle()
    assert os_.counters.get("l3_invalidations", 0) > 0
