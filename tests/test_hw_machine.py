"""Machine: the touch() cost model and counter wiring."""

import pytest

from repro.errors import HardwareError
from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa


@pytest.fixture
def machine():
    return Machine(small_numa())


def _place(machine, n_pages, node):
    pages = list(machine.memory.allocate(n_pages))
    for page in pages:
        machine.memory.place(page, node)
    return pages


def test_touch_unplaced_page_rejected(machine):
    pages = list(machine.memory.allocate(1))
    with pytest.raises(HardwareError):
        machine.touch(0.0, 0, pages)


def test_local_touch_counts_local_bytes(machine):
    pages = _place(machine, 4, node=0)
    result = machine.touch(0.0, 0, pages)  # core 0 is on node 0
    assert result.misses == 4
    assert result.remote_misses == 0
    assert result.bytes_local == 4 * machine.config.page_bytes
    assert result.bytes_remote == 0
    assert machine.counters.get("imc_bytes", 0) == result.bytes_local
    assert machine.counters.total("ht_tx_bytes") == 0


def test_remote_touch_moves_bytes_over_fabric(machine):
    pages = _place(machine, 4, node=1)
    remote_core = 0  # node 0
    result = machine.touch(0.0, remote_core, pages)
    assert result.remote_misses == 4
    assert result.bytes_remote == 4 * machine.config.page_bytes
    assert machine.counters.get("ht_tx_bytes", 1) == result.bytes_remote
    # IMC bytes are counted at the HOME node
    assert machine.counters.get("imc_bytes", 1) == result.bytes_remote


def test_remote_stall_exceeds_local(machine):
    local_pages = _place(machine, 8, node=0)
    remote_pages = _place(machine, 8, node=1)
    local = machine.touch(0.0, 0, local_pages)
    machine.flush_caches()
    remote = machine.touch(10.0, 0, remote_pages)
    assert remote.stall_time > local.stall_time


def test_second_touch_hits_cache(machine):
    pages = _place(machine, 2, node=0)
    machine.touch(0.0, 0, pages)
    again = machine.touch(0.0, 0, pages)
    assert again.hits == 2
    assert again.misses == 0
    assert again.stall_time == 0.0


def test_cache_is_per_socket(machine):
    pages = _place(machine, 2, node=0)
    machine.touch(0.0, 0, pages)          # warm node 0's L3
    other_socket_core = machine.topology.cores_of_node(1)[0]
    result = machine.touch(0.0, other_socket_core, pages)
    assert result.misses == 2             # node 1's L3 was cold


def test_l3_counters_attributed_to_accessing_socket(machine):
    pages = _place(machine, 3, node=0)
    core_on_node1 = machine.topology.cores_of_node(1)[0]
    machine.touch(0.0, core_on_node1, pages)
    assert machine.counters.get("l3_miss", 1) == 3
    assert machine.counters.get("l3_miss", 0) == 0


def test_bank_contention_raises_stalls(machine):
    first_pages = _place(machine, 16, node=0)
    second_pages = _place(machine, 16, node=0)
    quiet = machine.touch(0.0, 0, first_pages)
    machine.flush_caches()
    # immediately queue more work on the same bank: it must wait
    busy = machine.touch(0.0, 1, second_pages)
    assert busy.stall_time > quiet.stall_time


def test_account_busy_accumulates(machine):
    machine.account_busy(2, 0.25)
    machine.account_busy(2, 0.25)
    assert machine.counters.get("busy_time", 2) == pytest.approx(0.5)


def test_account_busy_rejects_negative(machine):
    with pytest.raises(HardwareError):
        machine.account_busy(0, -1.0)


def test_compute_time_uses_frequency(machine):
    t = machine.compute_time(machine.config.frequency_hz)
    assert t == pytest.approx(1.0)


def test_access_result_total_bytes(machine):
    pages = _place(machine, 2, node=0) + _place(machine, 2, node=1)
    result = machine.touch(0.0, 0, pages)
    assert result.bytes_total == result.bytes_local + result.bytes_remote
    assert result.bytes_total == 4 * machine.config.page_bytes
