"""Memory system: allocation, placement, histograms."""

import pytest

from repro.config import MachineConfig
from repro.errors import HardwareError
from repro.hardware.memory import UNPLACED, MemorySystem
from repro.hardware.topology import Topology


@pytest.fixture
def memory() -> MemorySystem:
    return MemorySystem(Topology(MachineConfig(n_sockets=2,
                                               cores_per_socket=2)))


def test_allocate_is_dense_and_monotonic(memory):
    a = memory.allocate(3)
    b = memory.allocate(2)
    assert list(a) == [0, 1, 2]
    assert list(b) == [3, 4]


def test_allocate_bytes_rounds_up(memory):
    pages = memory.allocate_bytes(memory.page_bytes + 1)
    assert len(pages) == 2


def test_allocate_bytes_zero_is_empty(memory):
    assert len(memory.allocate_bytes(0)) == 0


def test_placement_lifecycle(memory):
    (page,) = memory.allocate(1)
    assert memory.home(page) == UNPLACED
    assert not memory.is_placed(page)
    memory.place(page, 1)
    assert memory.home(page) == 1
    assert memory.pages_on_node(1) == 1


def test_double_placement_rejected(memory):
    (page,) = memory.allocate(1)
    memory.place(page, 0)
    with pytest.raises(HardwareError):
        memory.place(page, 1)


def test_place_unallocated_rejected(memory):
    with pytest.raises(HardwareError):
        memory.place(123, 0)


def test_place_bad_node_rejected(memory):
    (page,) = memory.allocate(1)
    with pytest.raises(HardwareError):
        memory.place(page, 5)


def test_free_returns_capacity(memory):
    pages = list(memory.allocate(4))
    for page in pages:
        memory.place(page, 0)
    assert memory.pages_on_node(0) == 4
    memory.free(pages[:2])
    assert memory.pages_on_node(0) == 2
    assert memory.home(pages[0]) == UNPLACED


def test_free_ignores_unplaced(memory):
    pages = memory.allocate(2)
    memory.free(pages)  # no error


def test_placement_histogram(memory):
    pages = list(memory.allocate(5))
    for page in pages[:3]:
        memory.place(page, 0)
    for page in pages[3:]:
        memory.place(page, 1)
    assert memory.placement_histogram() == [3, 2]


def test_pages_of_histogram_includes_unplaced(memory):
    pages = list(memory.allocate(4))
    memory.place(pages[0], 1)
    histogram = memory.pages_of(pages)
    assert histogram[1] == 1
    assert histogram[UNPLACED] == 3


def test_bank_capacity_enforced():
    config = MachineConfig(n_sockets=2, cores_per_socket=2,
                           dram_bytes=4 * MachineConfig().page_bytes)
    memory = MemorySystem(Topology(config))
    pages = list(memory.allocate(5))
    for page in pages[:4]:
        memory.place(page, 0)
    with pytest.raises(HardwareError):
        memory.place(pages[4], 0)
    memory.place(pages[4], 1)  # other bank still has room
