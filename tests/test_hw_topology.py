"""Topology: core/node mapping and distance matrix validation."""

import pytest

from repro.config import MachineConfig
from repro.errors import HardwareError
from repro.hardware.topology import Topology


@pytest.fixture
def topo() -> Topology:
    return Topology(MachineConfig(n_sockets=4, cores_per_socket=4))


def test_core_ids_are_node_major(topo):
    assert list(topo.cores_of_node(0)) == [0, 1, 2, 3]
    assert list(topo.cores_of_node(3)) == [12, 13, 14, 15]


def test_node_of_core_inverts_cores_of_node(topo):
    for node in topo.all_nodes():
        for core in topo.cores_of_node(node):
            assert topo.node_of_core(core) == node


def test_paper_core_mapping(topo):
    # core(i, j) = d*i + j  (paper §IV-B1)
    assert topo.core(0, 0) == 0
    assert topo.core(1, 2) == 6
    assert topo.core(3, 3) == 15


def test_core_mapping_bounds(topo):
    with pytest.raises(HardwareError):
        topo.core(0, 4)
    with pytest.raises(HardwareError):
        topo.core(4, 0)


def test_default_distance_is_flat(topo):
    for a in topo.all_nodes():
        for b in topo.all_nodes():
            expected = 0 if a == b else 1
            assert topo.distance(a, b) == expected


def test_custom_distance_matrix():
    config = MachineConfig(n_sockets=2, cores_per_socket=2)
    topo = Topology(config, distance=[[0, 2], [2, 0]])
    assert topo.distance(0, 1) == 2


def test_asymmetric_distance_rejected():
    config = MachineConfig(n_sockets=2, cores_per_socket=2)
    with pytest.raises(HardwareError):
        Topology(config, distance=[[0, 1], [2, 0]])


def test_nonzero_self_distance_rejected():
    config = MachineConfig(n_sockets=2, cores_per_socket=2)
    with pytest.raises(HardwareError):
        Topology(config, distance=[[1, 1], [1, 0]])


def test_core_out_of_range_rejected(topo):
    with pytest.raises(HardwareError):
        topo.node_of_core(16)
    with pytest.raises(HardwareError):
        topo.cores_of_node(4)


def test_all_cores_enumeration(topo):
    assert list(topo.all_cores()) == list(range(16))
