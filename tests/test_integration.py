"""End-to-end integration: mechanism + engines on the tiny TPC-H DB.

These runs use a tiny dataset (scale 0.004, simulated at 1/8th of the
paper's database) to stay fast while still exercising every layer:
generated data -> real plan execution -> profiled stages -> simulated
machine -> controller feedback loop.
"""

import pytest

from repro.db.clients import repeat_stream
from repro.experiments.common import build_system
from repro.sim.tracing import CoreAllocation, QueryRecord

SCALE = 0.004
SIM = 0.125


def build(engine="monetdb", mode=None, **kwargs):
    return build_system(engine=engine, mode=mode, scale=SCALE,
                        sim_scale=SIM, **kwargs)


class TestUncontrolledBaselines:
    @pytest.mark.parametrize("engine", ["monetdb", "sqlserver"])
    def test_q6_completes_on_both_engines(self, engine):
        sut = build(engine=engine)
        result = sut.run_clients(2, repeat_stream("q6", 2))
        assert result.queries_completed == 4
        assert result.makespan > 0

    def test_monetdb_data_lands_on_loader_node(self):
        sut = build(engine="monetdb")
        histogram = sut.os.machine.memory.placement_histogram()
        assert histogram[0] > 0
        assert sum(histogram[1:]) == 0

    def test_sqlserver_data_spread(self):
        sut = build(engine="sqlserver")
        histogram = sut.os.machine.memory.placement_histogram()
        assert all(v > 0 for v in histogram)

    def test_os_scheduler_generates_remote_traffic(self):
        sut = build(engine="monetdb")
        sut.mark()
        sut.run_clients(4, repeat_stream("q6", 2))
        assert sut.delta("ht_tx_bytes") > 0
        assert sut.delta("minor_faults") > 0


class TestControlledRuns:
    @pytest.mark.parametrize("mode", ["dense", "sparse", "adaptive"])
    def test_modes_complete_workload(self, mode):
        sut = build(mode=mode)
        result = sut.run_clients(4, repeat_stream("q6", 2))
        assert result.queries_completed == 8
        assert sut.controller is not None
        assert sut.controller.ticks > 0

    def test_controller_allocates_under_load(self):
        sut = build(mode="adaptive")
        sut.run_clients(4, repeat_stream("q1", 2))
        report = sut.controller.lonc.report()
        assert report.max_cores > report.min_cores
        allocations = sut.os.tracer.of(CoreAllocation)
        assert any(r.allocated for r in allocations)

    def test_adaptive_reduces_traffic_ratio_vs_os(self):
        """The paper's headline direction: smaller HT/IMC under control."""
        ratios = {}
        for mode in (None, "adaptive"):
            sut = build(mode=mode)
            sut.mark()
            sut.run_clients(8, repeat_stream("sel_45pct", 3))
            ratios[mode] = sut.ht_imc_ratio()
        assert ratios["adaptive"] < ratios[None]

    def test_adaptive_reduces_migrations_vs_os(self):
        migrations = {}
        for mode in (None, "adaptive"):
            sut = build(mode=mode)
            sut.mark()
            sut.run_clients(1, repeat_stream("q6", 3))
            migrations[mode] = sut.delta("migrations")
        assert migrations["adaptive"] < migrations[None]

    def test_mask_and_model_consistent_after_run(self):
        sut = build(mode="dense")
        sut.run_clients(4, repeat_stream("q6", 2))
        assert sut.controller.model.nalloc == len(sut.os.cpuset)

    def test_ht_imc_strategy_runs(self):
        sut = build(mode="adaptive", strategy="ht_imc")
        result = sut.run_clients(2, repeat_stream("q6", 2))
        assert result.queries_completed == 4

    def test_useful_load_strategy_runs(self):
        sut = build(mode="dense", strategy="useful_load")
        result = sut.run_clients(2, repeat_stream("q6", 2))
        assert result.queries_completed == 4


class TestWholeBenchmarkSlice:
    def test_mixed_queries_on_controlled_system(self):
        from repro.workloads.phases import mixed_phases_stream
        sut = build(mode="adaptive")
        stream = mixed_phases_stream(2, seed=1)
        result = sut.run_clients(4, stream)
        assert result.queries_completed == 8
        records = sut.os.tracer.of(QueryRecord)
        assert len(records) == 8

    def test_all_queries_run_under_the_mechanism(self):
        sut = build(mode="adaptive")
        for name in ("q1", "q9", "q13", "q18", "q21", "q22"):
            result = sut.run_clients(1, repeat_stream(name, 1))
            assert result.queries_completed == 1, name

    def test_per_query_counters_populated(self):
        sut = build(mode=None)
        sut.mark()
        sut.run_clients(2, repeat_stream("q6", 2))
        assert sut.delta("query_imc_bytes", "q6") > 0
        assert sut.query_ht_imc_ratio("q6") >= 0

    def test_intermediates_do_not_leak(self):
        sut = build(mode=None)
        memory = sut.os.machine.memory
        base = sum(memory.placement_histogram())
        sut.run_clients(4, repeat_stream("q9", 2))
        assert sum(memory.placement_histogram()) == base
