"""Golden parity: live health series == post-hoc provenance replay.

One monitored run feeds two independent pipelines — the streaming bus
(tick-by-tick) and the decision-provenance log (batch) — and the paper's
health judgements (convergence to LONC, oscillation, allocation lag,
SLO burn) must come out identical from both.  This is what makes the
live numbers trustworthy: they are not approximations of the post-hoc
analysis, they *are* it.
"""

import pytest

from repro.db.clients import repeat_stream
from repro.experiments.common import build_system
from repro.obs import Recorder
from repro.obs.health import (HealthConfig, SloObjective,
                              analyze_decisions, slo_burn_from_stream)
from repro.obs.live import LiveBus, streaming
from repro.obs.provenance import dump_decisions, load_decisions
from repro.obs.serve import JsonlSink, load_stream

OBJECTIVE = SloObjective("latency_p95", "live.latency.p95", "<=", 0.5)


@pytest.fixture(scope="module")
def monitored_run(tmp_path_factory):
    """One run observed by the live bus AND the provenance recorder."""
    stream_path = tmp_path_factory.mktemp("golden") / "stream.jsonl"
    bus = LiveBus(window=0.05, slos=(OBJECTIVE,))
    sink = JsonlSink(stream_path)
    bus.add_sink(sink)
    recorder = Recorder()
    try:
        with streaming(bus):
            sut = build_system(obs=recorder, engine="morsel",
                               mode="adaptive", scale=0.004,
                               sim_scale=0.125)
            sut.run_clients(4, repeat_stream("q6", 2))
    finally:
        sink.close()
    return bus, recorder, stream_path


def test_run_produced_decisions_on_both_paths(monitored_run):
    bus, recorder, _ = monitored_run
    assert len(recorder.decisions) > 0
    assert bus.decisions_seen == len(recorder.decisions)


def test_live_health_equals_provenance_replay(monitored_run, tmp_path):
    bus, recorder, _ = monitored_run
    # round-trip through the on-disk log: exactly what a post-hoc
    # analysis of a telemetry directory would read
    path = tmp_path / "decisions.jsonl"
    dump_decisions(recorder.decisions.all(), path)
    replay = analyze_decisions(load_decisions(path), HealthConfig())
    assert replay.snapshot() == bus.health.snapshot()


def test_live_series_last_values_match_replay(monitored_run):
    bus, recorder, _ = monitored_run
    replay = analyze_decisions(recorder.decisions.all())
    health = replay.tenants["db"]
    series = bus.series
    assert series["health.db.oscillation"].last == \
        pytest.approx(health.oscillation)
    assert series["health.db.flapping"].last == \
        pytest.approx(health.flapping)
    assert series["health.db.converged"].last == \
        (1.0 if health.converged else 0.0)
    if health.last_lag is not None:
        assert series["health.db.allocation_lag"].last == \
            float(health.last_lag)
    if health.convergence_time is not None:
        assert series["health.db.convergence_time"].last == \
            pytest.approx(health.convergence_time)


def test_slo_burn_replays_from_the_jsonl_stream(monitored_run):
    bus, _, stream_path = monitored_run
    (tracker,) = bus.slos
    assert tracker.counted + tracker.skipped == bus.windows
    replayed = slo_burn_from_stream(load_stream(stream_path), OBJECTIVE)
    assert replayed == tracker.burn


def test_stream_window_records_match_the_bus(monitored_run):
    bus, _, stream_path = monitored_run
    windows = [e for e in load_stream(stream_path)
               if e["kind"] == "window"]
    assert len(windows) == bus.windows
    assert windows[-1]["decisions"] == bus.decisions_seen
