"""Alert rules: hysteresis, the three rule kinds, rules-as-data."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.alerts import (DEFAULT_RULES, AlertEngine, AlertRule,
                              load_rules)
from repro.obs.live import LiveBus


def bus_with(name: str, samples) -> LiveBus:
    bus = LiveBus(taps=())
    for t, value in samples:
        bus.emit(name, t, value)
    return bus


class TestRuleValidation:
    def test_unknown_kind_op_severity(self):
        with pytest.raises(ReproError):
            AlertRule(name="x", series="s", kind="gradient")
        with pytest.raises(ReproError):
            AlertRule(name="x", series="s", op="!=")
        with pytest.raises(ReproError):
            AlertRule(name="x", series="s", severity="meh")

    def test_window_counts_must_be_positive(self):
        with pytest.raises(ReproError):
            AlertRule(name="x", series="s", for_windows=0)
        with pytest.raises(ReproError):
            AlertRule(name="x", series="s", window=0)

    def test_absence_needs_no_op(self):
        AlertRule(name="x", series="s", kind="absence", op="whatever")


class TestThresholdHysteresis:
    RULE = AlertRule(name="hot", series="health.*.oscillation",
                     op=">=", value=0.5, for_windows=2, clear_windows=2)

    def test_fires_after_for_windows_breaches(self):
        engine = AlertEngine([self.RULE])
        bus = bus_with("health.db.oscillation", [(1.0, 0.8)])
        assert engine.evaluate(1.0, bus) == []  # one breach: armed only
        events = engine.evaluate(2.0, bus)
        assert [e["event"] for e in events] == ["firing"]
        assert events[0]["series"] == "health.db.oscillation"
        assert events[0]["value"] == 0.8
        assert engine.firing()[0].rule.name == "hot"

    def test_one_good_window_does_not_resolve(self):
        engine = AlertEngine([self.RULE])
        bus = bus_with("health.db.oscillation", [(1.0, 0.8)])
        engine.evaluate(1.0, bus)
        engine.evaluate(2.0, bus)  # firing
        bus.emit("health.db.oscillation", 3.0, 0.1)
        assert engine.evaluate(3.0, bus) == []  # still firing
        events = engine.evaluate(4.0, bus)
        assert [e["event"] for e in events] == ["resolved"]
        assert engine.firing() == []

    def test_one_noisy_window_never_pages(self):
        engine = AlertEngine([self.RULE])
        bus = bus_with("health.db.oscillation", [(1.0, 0.8)])
        engine.evaluate(1.0, bus)
        bus.emit("health.db.oscillation", 2.0, 0.1)  # back to good
        engine.evaluate(2.0, bus)
        bus.emit("health.db.oscillation", 3.0, 0.8)
        assert engine.evaluate(3.0, bus) == []  # streak was reset


class TestTrendRules:
    def test_rising_slope_breaches(self):
        rule = AlertRule(name="climbing", series="live.latency.p95",
                         kind="trend", op=">", value=0.5, window=4)
        bus = bus_with("live.latency.p95",
                       [(0.0, 0.1), (1.0, 1.1), (2.0, 2.1)])
        events = AlertEngine([rule]).evaluate(2.0, bus)
        assert [e["event"] for e in events] == ["firing"]
        assert events[0]["value"] == pytest.approx(1.0)  # the slope

    def test_flat_series_does_not_breach(self):
        rule = AlertRule(name="climbing", series="live.latency.p95",
                         kind="trend", op=">", value=0.5, window=4)
        bus = bus_with("live.latency.p95", [(0.0, 1.0), (2.0, 1.0)])
        assert AlertEngine([rule]).evaluate(2.0, bus) == []


class TestAbsenceRules:
    RULE = AlertRule(name="dark", series="live.throughput",
                     kind="absence", window=2)

    def test_missing_series_is_an_absence(self):
        bus = LiveBus(taps=())
        events = AlertEngine([self.RULE]).evaluate(10.0, bus)
        assert [e["event"] for e in events] == ["firing"]

    def test_fresh_sample_clears_the_absence(self):
        # window=2 flush windows of 0.25s: fresh means within 0.5s
        bus = bus_with("live.throughput", [(9.8, 5.0)])
        assert AlertEngine([self.RULE]).evaluate(10.0, bus) == []

    def test_stale_sample_is_still_an_absence(self):
        bus = bus_with("live.throughput", [(1.0, 5.0)])
        events = AlertEngine([self.RULE]).evaluate(10.0, bus)
        assert [e["event"] for e in events] == ["firing"]


class TestProvenanceLinks:
    def test_transitions_carry_the_last_acting_decision(self):
        from repro.obs.provenance import Decision
        bus = bus_with("health.db.oscillation", [(1.0, 0.9)])
        bus.health.observe(Decision(
            time=0.8, tick=3, strategy="cpu_load", metric=80.0,
            th_min=10.0, th_max=70.0, state="Overload", entry="t1",
            entry_guard="g", exit="t5", exit_guard="g",
            action="allocate", mode="default", core=2, node=0,
            cores_before=1, cores_after=2, tenant="db"))
        rule = AlertRule(name="hot", series="health.*.oscillation",
                        op=">=", value=0.5)
        (event,) = AlertEngine([rule]).evaluate(1.0, bus)
        assert event["provenance"]["db"]["tick"] == 3
        assert event["provenance"]["db"]["action"] == "allocate"


class TestEngineSnapshot:
    def test_snapshot_counts_firing_and_keeps_transitions(self):
        rule = AlertRule(name="hot", series="s", op=">=", value=1.0)
        engine = AlertEngine([rule])
        bus = bus_with("s", [(1.0, 2.0)])
        engine.evaluate(1.0, bus)
        snapshot = engine.snapshot()
        assert snapshot["firing"] == 1
        assert [s["alert"] for s in snapshot["rules"]] == ["hot"]
        assert len(snapshot["transitions"]) == 1

    def test_default_rules_cover_the_monitoring_idioms(self):
        kinds = {rule.kind for rule in DEFAULT_RULES}
        assert kinds == {"threshold", "absence"}
        names = {rule.name for rule in DEFAULT_RULES}
        assert {"controller_flapping", "slo_burn_high",
                "telemetry_absent"} <= names


class TestRulesAsData:
    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([
            {"name": "hot", "series": "health.*.oscillation",
             "op": ">=", "value": 0.7, "for_windows": 2,
             "severity": "critical"},
            {"name": "dark", "series": "live.*", "kind": "absence",
             "window": 4},
        ]))
        rules = load_rules(path)
        assert [r.name for r in rules] == ["hot", "dark"]
        assert rules[0].value == 0.7
        assert rules[1].kind == "absence"

    def test_unknown_keys_fail_loudly(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            [{"name": "x", "series": "s", "treshold": 5}]))
        with pytest.raises(ReproError, match="unknown keys"):
            load_rules(path)

    def test_malformed_files_rejected(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("not json")
        with pytest.raises(ReproError):
            load_rules(path)
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ReproError, match="JSON list"):
            load_rules(path)
        path.write_text(json.dumps([{"series": "s"}]))
        with pytest.raises(ReproError, match="needs 'name'"):
            load_rules(path)
