"""Telemetry exporters: Prometheus, JSONL, Chrome trace, stats table."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (Recorder, dump_chrome_trace, dump_metrics_jsonl,
                       export_run, load_metrics_jsonl,
                       render_prometheus, stats_table)
from repro.obs.export import (escape_label_value, format_labels,
                              prometheus_name, render_family)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


def loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("controller.ticks").inc(3)
    reg.gauge("cpuset.allowed_cores").set(4)
    h = reg.histogram("db.query_seconds", (0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    return reg


class TestPrometheus:
    def test_name_mangling(self):
        assert prometheus_name("controller.ticks") == \
            "repro_controller_ticks"

    def test_counter_and_gauge_lines(self):
        text = render_prometheus(loaded_registry())
        assert "# TYPE repro_controller_ticks counter" in text
        assert "repro_controller_ticks 3" in text
        assert "# TYPE repro_cpuset_allowed_cores gauge" in text
        assert "repro_cpuset_allowed_cores 4" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(loaded_registry())
        assert 'repro_db_query_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_db_query_seconds_bucket{le="1"} 2' in text
        assert 'repro_db_query_seconds_bucket{le="10"} 3' in text
        assert 'repro_db_query_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_db_query_seconds_sum 55.55" in text
        assert "repro_db_query_seconds_count 4" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_help_and_type_once_per_family(self):
        text = render_prometheus(loaded_registry())
        for family in ("repro_controller_ticks",
                       "repro_cpuset_allowed_cores",
                       "repro_db_query_seconds"):
            assert text.count(f"# HELP {family} ") == 1
            assert text.count(f"# TYPE {family} ") == 1

    def test_colliding_names_of_one_kind_merge_into_one_family(self):
        reg = MetricsRegistry()
        reg.counter("a.b_c").inc(1)
        reg.counter("a.b.c").inc(2)
        text = render_prometheus(reg)
        assert text.count("# TYPE repro_a_b_c counter") == 1
        samples = [line for line in text.splitlines()
                   if not line.startswith("#")]
        assert sorted(samples) == ["repro_a_b_c 1", "repro_a_b_c 2"]

    def test_colliding_names_of_different_kinds_are_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a.b_c").inc(1)
        reg.gauge("a.b.c").set(2)
        with pytest.raises(ReproError, match="both"):
            render_prometheus(reg)


class TestExpositionEscaping:
    def test_label_values_escape_reserved_characters(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("plain") == "plain"

    def test_format_labels(self):
        assert format_labels({}) == ""
        assert format_labels({"le": "0.1"}) == '{le="0.1"}'
        assert format_labels({"tenant": 'o"ltp'}) == \
            '{tenant="o\\"ltp"}'

    def test_render_family_escapes_labels_and_help(self):
        lines = render_family(
            "repro_x", "gauge", "help with\nnewline",
            [("", {"tenant": 'a"b\\c'}, 1.5)])
        assert lines[0] == "# HELP repro_x help with\\nnewline"
        assert lines[1] == "# TYPE repro_x gauge"
        assert lines[2] == 'repro_x{tenant="a\\"b\\\\c"} 1.5'

    def test_render_family_integer_samples_stay_integers(self):
        lines = render_family("repro_x", "counter", "h",
                              [("_total", {}, 7)])
        assert lines[2] == "repro_x_total 7"


class TestMetricsJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = loaded_registry()
        assert dump_metrics_jsonl(reg, path) == 3
        assert load_metrics_jsonl(path) == reg.snapshot()

    def test_invalid_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("nope\n")
        with pytest.raises(ReproError):
            load_metrics_jsonl(path)
        path.write_text('{"name": "x"}\n')
        with pytest.raises(ReproError):
            load_metrics_jsonl(path)


class TestChromeTraceFile:
    def test_file_is_valid_trace_event_json(self, tmp_path):
        tracer = SpanTracer()
        tracer.add_complete("stage:scan", start=0.5, duration=0.25,
                            tid=3)
        tracer.instant("mask", time=1.0)
        path = tmp_path / "trace.json"
        assert dump_chrome_trace(tracer, path) == 2
        document = json.loads(path.read_text())
        assert set(document) >= {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        assert events[0]["ph"] == "X" and events[1]["ph"] == "i"
        for event in events:
            assert {"name", "ts", "pid", "tid", "ph"} <= set(event)


class TestExportRun:
    def test_writes_all_four_formats(self, tmp_path):
        rec = Recorder()
        rec.metrics.counter("controller.ticks").inc()
        rec.spans.add_complete("q", 0.0, 1.0)
        paths = export_run(rec, tmp_path / "out")
        assert set(paths) == {"prometheus", "metrics", "trace",
                              "decisions"}
        for path in paths.values():
            assert path.exists()
        assert json.loads(paths["trace"].read_text())["traceEvents"]
        assert "repro_controller_ticks" in \
            paths["prometheus"].read_text()


class TestStatsTable:
    def test_table_from_registry_and_entries(self, tmp_path):
        reg = loaded_registry()
        text = stats_table(reg)
        assert "controller.ticks" in text
        assert "db.query_seconds" in text
        path = tmp_path / "metrics.jsonl"
        dump_metrics_jsonl(reg, path)
        again = stats_table(load_metrics_jsonl(path))
        # same rows whether summarised live or from disk
        assert text.splitlines()[1:] == again.splitlines()[1:]

    def test_empty_is_graceful(self):
        assert "no metrics" in stats_table([])
