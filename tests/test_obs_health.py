"""Controller-health analyzers: convergence, oscillation, lag, SLOs."""

import pytest

from repro.errors import ReproError
from repro.obs.health import (HealthConfig, HealthSuite, SloObjective,
                              SloTracker, TenantHealth,
                              analyze_decisions, slo_burn_from_stream)
from repro.obs.provenance import Decision


def decision(time, tick, state, action=None, core=None, cores_after=1,
             tenant="db", metric=50.0):
    """A minimal but fully-formed controller decision."""
    return Decision(
        time=time, tick=tick, strategy="cpu_load", metric=metric,
        th_min=10.0, th_max=70.0, state=state, entry="t1",
        entry_guard="x <= th_max", exit="t2", exit_guard="x > th_min",
        action=action, mode="default", core=core, node=0,
        cores_before=cores_after if action is None else
        cores_after - (1 if action == "allocate" else -1),
        cores_after=cores_after, tenant=tenant)


class TestConvergence:
    def test_streak_of_stable_passes_converges(self):
        health = TenantHealth("db", HealthConfig(stable_streak=3))
        for i in range(3):
            health.observe(decision(1.0 + i, i, "Stable"))
            assert health.converged == (i == 2)
        # sim seconds from the first decision to the converging pass
        assert health.convergence_time == pytest.approx(2.0)

    def test_interrupted_streak_restarts(self):
        health = TenantHealth("db", HealthConfig(stable_streak=2))
        health.observe(decision(1.0, 0, "Stable"))
        health.observe(decision(2.0, 1, "Overload", action="allocate",
                                core=1, cores_after=2))
        health.observe(decision(3.0, 2, "Stable"))
        assert not health.converged
        health.observe(decision(4.0, 3, "Stable"))
        assert health.converged

    def test_leaving_stable_after_convergence_is_a_divergence(self):
        health = TenantHealth("db", HealthConfig(stable_streak=1))
        health.observe(decision(1.0, 0, "Stable"))
        assert health.converged
        health.observe(decision(2.0, 1, "Overload"))
        assert not health.converged
        assert health.divergences == 1
        # convergence_time keeps the first convergence (time-to-LONC)
        assert health.convergence_time == pytest.approx(0.0)


class TestOscillation:
    def test_ping_pong_scores_one(self):
        health = TenantHealth("db", HealthConfig())
        actions = ["allocate", "release", "allocate", "release"]
        for i, action in enumerate(actions):
            health.observe(decision(float(i), i, "Overload",
                                    action=action, core=1))
        assert health.oscillation == 1.0

    def test_monotone_growth_scores_zero(self):
        health = TenantHealth("db", HealthConfig())
        for i in range(4):
            health.observe(decision(float(i), i, "Overload",
                                    action="allocate", core=i,
                                    cores_after=i + 2))
        assert health.oscillation == 0.0

    def test_non_acting_passes_do_not_count(self):
        health = TenantHealth("db", HealthConfig())
        health.observe(decision(0.0, 0, "Stable"))
        health.observe(decision(1.0, 1, "Stable"))
        assert health.oscillation == 0.0


class TestFlapping:
    def test_state_change_rate(self):
        health = TenantHealth("db", HealthConfig())
        for i, state in enumerate(["Stable", "Overload", "Stable",
                                   "Overload"]):
            health.observe(decision(float(i), i, state))
        assert health.flapping == 1.0

    def test_steady_state_does_not_flap(self):
        health = TenantHealth("db", HealthConfig())
        for i in range(5):
            health.observe(decision(float(i), i, "Stable"))
        assert health.flapping == 0.0


class TestAllocationLag:
    def test_lag_counts_ticks_from_threshold_crossing(self):
        health = TenantHealth("db", HealthConfig())
        health.observe(decision(0.0, 0, "Stable"))
        # tick 1 leaves Stable (the crossing); cooldown holds the core
        # change back until tick 3
        health.observe(decision(1.0, 1, "Overload"))
        health.observe(decision(2.0, 2, "Overload"))
        health.observe(decision(3.0, 3, "Overload", action="allocate",
                                core=2, cores_after=2))
        assert health.last_lag == 3
        assert health.lags == [3]

    def test_immediate_application_has_lag_one(self):
        health = TenantHealth("db", HealthConfig())
        health.observe(decision(1.0, 1, "Overload", action="allocate",
                                core=1, cores_after=2))
        assert health.last_lag == 1

    def test_returning_to_stable_abandons_the_episode(self):
        health = TenantHealth("db", HealthConfig())
        health.observe(decision(1.0, 1, "Overload"))
        health.observe(decision(2.0, 2, "Stable"))
        health.observe(decision(3.0, 3, "Overload", action="allocate",
                                core=1, cores_after=2))
        assert health.last_lag == 1  # episode restarted at tick 3
        assert health.mean_lag == pytest.approx(1.0)


class TestProvenance:
    def test_last_action_links_back_to_the_decision(self):
        health = TenantHealth("db", HealthConfig())
        health.observe(decision(1.0, 4, "Overload", action="allocate",
                                core=7, cores_after=3))
        assert health.last_action == {
            "time": 1.0, "tick": 4, "action": "allocate", "core": 7,
            "state": "Overload", "cores_after": 3}
        health.observe(decision(2.0, 5, "Stable"))
        assert health.last_action["tick"] == 4  # unchanged by no-ops


class TestSuiteAndReplay:
    def test_suite_routes_by_tenant(self):
        suite = HealthSuite()
        suite.observe(decision(1.0, 0, "Stable", tenant="db"))
        suite.observe(decision(1.0, 0, "Overload", tenant="oltp"))
        assert set(suite.tenants) == {"db", "oltp"}
        assert suite.snapshot()["oltp"]["decisions"] == 1

    def test_post_hoc_replay_matches_incremental(self):
        stream = [
            decision(0.0, 0, "Overload", action="allocate", core=1,
                     cores_after=2),
            decision(1.0, 1, "Stable"),
            decision(2.0, 2, "Stable"),
            decision(3.0, 3, "Stable"),
            decision(4.0, 4, "Underload", action="release", core=1,
                     cores_after=1),
        ]
        live = HealthSuite()
        for d in stream:
            live.observe(d)
        replay = analyze_decisions(stream)
        assert replay.snapshot() == live.snapshot()

    def test_config_validation(self):
        with pytest.raises(ReproError):
            HealthConfig(stable_streak=0)
        with pytest.raises(ReproError):
            HealthConfig(osc_window=1)


class TestSlo:
    def test_objective_ops(self):
        latency = SloObjective("lat", "live.latency.p95", "<=", 0.5)
        assert latency.good(0.5) and not latency.good(0.6)
        throughput = SloObjective("tput", "live.throughput", ">=", 10.0)
        assert throughput.good(10.0) and not throughput.good(9.0)
        with pytest.raises(ReproError):
            SloObjective("bad", "s", "!=", 1.0)

    def test_empty_windows_are_skipped_not_scored(self):
        tracker = SloTracker(
            SloObjective("lat", "live.latency.p95", "<=", 0.5))
        assert tracker.observe_window(None) is None
        assert tracker.skipped == 1
        assert tracker.burn is None  # no counted window says nothing
        assert tracker.observe_window(0.4) == 0.0
        assert tracker.observe_window(0.9) == 0.5
        assert tracker.observe_window(None) == 0.5
        assert tracker.counted == 2 and tracker.skipped == 2

    def test_stream_replay_matches_live_tracker(self):
        objective = SloObjective("lat", "live.latency.p95", "<=", 0.5)
        live = SloTracker(objective)
        entries = []
        for t, value in ((0.25, 0.4), (0.5, None), (0.75, 0.9)):
            if value is not None:
                entries.append({"kind": "sample", "t": t,
                                "series": objective.series,
                                "value": value})
            entries.append({"kind": "window", "t": t})
            live.observe_window(value)
        assert slo_burn_from_stream(entries, objective) == live.burn

    def test_stream_replay_ignores_other_series(self):
        objective = SloObjective("lat", "live.latency.p95", "<=", 0.5)
        entries = [
            {"kind": "sample", "t": 0.1, "series": "live.throughput",
             "value": 99.0},
            {"kind": "window", "t": 0.25},
        ]
        assert slo_burn_from_stream(entries, objective) is None
