"""Live telemetry: rolling aggregators, the bus, the sim-driven flush."""

from types import SimpleNamespace

import pytest

from repro.db.clients import repeat_stream
from repro.errors import ReproError
from repro.experiments.common import build_system
from repro.obs import Recorder
from repro.obs.live import (CounterTap, Ewma, GaugeTap, HistogramTap,
                            LiveBus, P2Quantile, Series, WindowRate,
                            default_taps, install_live, live_bus,
                            streaming, uninstall_live)
from repro.obs.metrics import MetricsRegistry


def fake_system(registry: MetricsRegistry, now: float):
    """The duck the bus flush needs: ``.now`` and ``.obs.metrics``."""
    return SimpleNamespace(now=now, obs=SimpleNamespace(metrics=registry))


# ----------------------------------------------------------------------
# aggregators
# ----------------------------------------------------------------------

class TestEwma:
    def test_warm_up_is_explicit(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.value is None
        assert ewma.update(10.0) == 10.0  # first observation is exact

    def test_blending(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(20.0) == pytest.approx(15.0)
        assert ewma.count == 2

    def test_alpha_validation(self):
        with pytest.raises(ReproError):
            Ewma(alpha=0.0)
        with pytest.raises(ReproError):
            Ewma(alpha=1.5)
        Ewma(alpha=1.0)  # boundary is legal: no smoothing


class TestWindowRate:
    def test_first_window_does_not_exist(self):
        rate = WindowRate()
        assert rate.update(1.0, 100.0) is None

    def test_steady_rate(self):
        rate = WindowRate()
        rate.update(1.0, 100.0)
        assert rate.update(2.0, 150.0) == pytest.approx(50.0)
        assert rate.update(4.0, 250.0) == pytest.approx(50.0)

    def test_counter_reset_uses_post_reset_value(self):
        # Prometheus convention: a decrease means the counter restarted
        # from zero, so the post-reset reading *is* the delta
        rate = WindowRate()
        rate.update(1.0, 1000.0)
        assert rate.update(2.0, 30.0) == pytest.approx(30.0)

    def test_zero_interval_is_zero_rate(self):
        rate = WindowRate()
        rate.update(1.0, 10.0)
        assert rate.update(1.0, 20.0) == 0.0

    def test_delta_preview(self):
        rate = WindowRate()
        rate.update(1.0, 10.0)
        assert rate.delta(14.0) == pytest.approx(4.0)
        assert rate.delta(3.0) == pytest.approx(3.0)  # reset


class TestP2Quantile:
    def test_empty_sketch_has_no_quantile(self):
        assert P2Quantile(0.5).value() is None

    def test_exact_below_five_observations(self):
        sketch = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            sketch.observe(v)
        assert sketch.value() == 3.0

    def test_q_validation(self):
        with pytest.raises(ReproError):
            P2Quantile(0.0)
        with pytest.raises(ReproError):
            P2Quantile(1.0)

    def test_median_of_uniform_stream(self):
        sketch = P2Quantile(0.5)
        # deterministic pseudo-shuffled stream over [0, 1)
        for i in range(1000):
            sketch.observe((i * 37 % 1000) / 1000.0)
        assert sketch.value() == pytest.approx(0.5, abs=0.05)

    def test_p95_of_uniform_stream(self):
        sketch = P2Quantile(0.95)
        for i in range(1000):
            sketch.observe((i * 37 % 1000) / 1000.0)
        assert sketch.value() == pytest.approx(0.95, abs=0.05)


class TestSeries:
    def test_add_and_summary(self):
        series = Series("s")
        series.add(1.0, 10.0)
        series.add(2.0, 20.0)
        assert series.last == 20.0
        assert series.last_time == 2.0
        assert series.count == 2
        assert series.as_dict()["ewma"] is not None

    def test_trend_is_per_second_slope(self):
        series = Series("s")
        series.add(0.0, 0.0)
        series.add(2.0, 10.0)
        assert series.trend(2) == pytest.approx(5.0)

    def test_trend_needs_an_interval(self):
        series = Series("s")
        assert series.trend(4) is None
        series.add(1.0, 1.0)
        assert series.trend(4) is None
        series.add(1.0, 2.0)  # zero elapsed time
        assert series.trend(4) is None

    def test_ring_is_bounded(self):
        series = Series("s", keep=8)
        for i in range(100):
            series.add(float(i), float(i))
        assert len(series.samples) == 8
        assert series.count == 100


# ----------------------------------------------------------------------
# registry taps
# ----------------------------------------------------------------------

class TestTaps:
    def test_counter_tap_emits_windowed_rate(self):
        bus = LiveBus(taps=(CounterTap("db.queries",
                                       "live.throughput"),))
        registry = MetricsRegistry()
        counter = registry.counter("db.queries")
        counter.inc(10)
        bus.flush(fake_system(registry, 1.0))
        assert "live.throughput" not in bus.series  # no window yet
        counter.inc(20)
        bus.flush(fake_system(registry, 2.0))
        assert bus.series["live.throughput"].last == pytest.approx(20.0)

    def test_gauge_tap_samples_the_level(self):
        bus = LiveBus(taps=(GaugeTap("cpuset.allowed_cores",
                                     "live.cores_allowed"),))
        registry = MetricsRegistry()
        registry.gauge("cpuset.allowed_cores").set(4)
        bus.flush(fake_system(registry, 1.0))
        assert bus.series["live.cores_allowed"].last == 4.0

    def test_missing_metric_is_skipped(self):
        bus = LiveBus()  # default taps, empty registry
        bus.flush(fake_system(MetricsRegistry(), 1.0))
        assert bus.windows == 1
        assert bus.series == {}

    def test_histogram_tap_windows_mean_and_quantiles(self):
        bus = LiveBus(taps=(HistogramTap("db.query_seconds",
                                         "live.latency"),))
        registry = MetricsRegistry()
        hist = registry.histogram("db.query_seconds", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5):
            hist.observe(v)
        bus.flush(fake_system(registry, 1.0))
        assert bus.series["live.latency.mean"].last == \
            pytest.approx((0.05 + 0.5 + 0.5) / 3)
        # conservative upper-edge quantiles from the bucket deltas
        assert bus.series["live.latency.p50"].last == 1.0
        assert bus.series["live.latency.p95"].last == 1.0

    def test_histogram_empty_window_emits_nothing(self):
        bus = LiveBus(taps=(HistogramTap("db.query_seconds",
                                         "live.latency"),))
        registry = MetricsRegistry()
        hist = registry.histogram("db.query_seconds", (0.1, 1.0))
        hist.observe(0.5)
        bus.flush(fake_system(registry, 1.0))
        count = bus.series["live.latency.mean"].count
        bus.flush(fake_system(registry, 2.0))  # no new observations
        assert bus.series["live.latency.mean"].count == count

    def test_default_taps_cover_the_headline_metrics(self):
        metrics = {tap.metric for tap in default_taps()}
        assert {"db.queries", "db.query_seconds",
                "cpuset.allowed_cores",
                "scheduler.migrations"} <= metrics


# ----------------------------------------------------------------------
# the bus
# ----------------------------------------------------------------------

class TestLiveBus:
    def test_window_must_be_positive(self):
        with pytest.raises(ReproError):
            LiveBus(window=0.0)

    def test_emit_and_snapshot(self):
        bus = LiveBus()
        bus.emit("x", 1.0, 42.0)
        snapshot = bus.snapshot()
        assert snapshot["series"]["x"]["last"] == 42.0
        assert snapshot["windows"] == 0
        assert snapshot["decisions"] == 0

    def test_on_core_change_streams_per_tenant(self):
        bus = LiveBus()
        bus.on_core_change(1.0, "db", 3)
        assert bus.series["live.cores.db"].last == 3.0

    def test_sinks_receive_samples_and_windows(self):
        records = []
        sink = SimpleNamespace(
            write=lambda kind, payload: records.append(kind),
            flush=lambda: None)
        bus = LiveBus(taps=())
        bus.add_sink(sink)
        bus.emit("x", 1.0, 1.0)
        bus.flush(fake_system(MetricsRegistry(), 1.0))
        assert records == ["sample", "window"]

    def test_install_uninstall(self):
        assert live_bus() is None
        bus = install_live()
        try:
            assert live_bus() is bus
        finally:
            uninstall_live()
        assert live_bus() is None

    def test_streaming_context_manager(self):
        with streaming() as bus:
            assert live_bus() is bus
        assert live_bus() is None


# ----------------------------------------------------------------------
# the sim-driven flush (end to end on a real system)
# ----------------------------------------------------------------------

class TestSimDrivenFlush:
    def test_windows_close_as_sim_time_advances(self):
        with streaming(LiveBus(window=0.05)) as bus:
            sut = build_system(obs=Recorder(), engine="morsel",
                               mode="adaptive", scale=0.004,
                               sim_scale=0.125)
            sut.run_clients(2, repeat_stream("q6", 2))
            # the run returning proves the flush timer terminated: it
            # re-arms only while other events are pending
        assert bus.windows > 0
        assert bus.decisions_seen > 0
        assert "live.throughput" in bus.series
        assert "live.cores.db" in bus.series
        assert "health.db.oscillation" in bus.series
        # every query landed in some closed window: the latency tap saw
        # at least one non-empty delta
        assert bus.series["live.latency.mean"].last > 0

    def test_unmonitored_run_pays_nothing(self):
        # no bus installed: the system never arms a flush timer
        sut = build_system(obs=Recorder(), engine="morsel",
                           mode="adaptive", scale=0.004,
                           sim_scale=0.125)
        sut.run_clients(2, repeat_stream("q6", 2))
        assert sut.os._live_timer is None
