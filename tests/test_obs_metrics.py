"""The metrics registry: counters, gauges, histograms, null twins."""

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (TIME_BUCKETS, VALUE_BUCKETS, Counter,
                               Gauge, Histogram, MetricsRegistry,
                               NullMetricsRegistry, check_name)


class TestNames:
    def test_dotted_lowercase_accepted(self):
        for name in ("controller.ticks", "db.morsel.exec_seconds",
                     "sim_events", "a.b_c.d2"):
            assert check_name(name) == name

    def test_bad_names_rejected(self):
        for name in ("", "Controller.ticks", ".ticks", "ticks.",
                     "a..b", "a b", "9lives"):
            with pytest.raises(ReproError):
                check_name(name)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ReproError):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(4)
        assert c.as_dict() == {"name": "x", "kind": "counter",
                               "value": 4.0}


class TestGauge:
    def test_set_and_adjust(self):
        g = Gauge("x")
        g.set(7)
        g.inc(-3)
        assert g.value == 4.0


class TestHistogram:
    def test_buckets_count_and_stats(self):
        h = Histogram("x", (1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == 555.5
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(138.875)

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("x", (1.0, 10.0))
        h.observe(1.0)
        # le="1" semantics: the observation is <= the first edge
        assert h.bucket_counts == [1, 0, 0]

    def test_quantile_is_bucket_edge(self):
        h = Histogram("x", (1.0, 10.0, 100.0))
        for _ in range(9):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= 1.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            Histogram("x").quantile(1.5)

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ReproError):
            Histogram("x", (10.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("x", ())

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram("x", (1.0,)).as_dict()
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.histogram("h") is reg.histogram("h", VALUE_BUCKETS)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ReproError):
            reg.gauge("a")

    def test_bad_name_rejected_on_creation(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("Bad.Name")

    def test_names_sorted_and_lookup(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a")
        assert reg.names() == ["a", "z"]
        assert len(reg) == 2
        assert "z" in reg and "q" not in reg
        assert reg.get("z").kind == "counter"
        with pytest.raises(ReproError):
            reg.get("q")

    def test_snapshot_covers_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", TIME_BUCKETS).observe(0.5)
        snap = reg.snapshot()
        assert [e["name"] for e in snap] == ["c", "g", "h"]
        assert {e["kind"] for e in snap} == {"counter", "gauge",
                                             "histogram"}


class TestNullRegistry:
    def test_hands_out_shared_singletons(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b")

    def test_recording_is_a_no_op(self):
        reg = NullMetricsRegistry()
        reg.counter("a").inc(5)
        reg.gauge("a").set(5)
        reg.histogram("a").observe(5)
        assert reg.counter("a").value == 0.0
        assert len(reg) == 0
        assert reg.snapshot() == []
        assert not reg.enabled
