"""Decision provenance: the causal chain behind every mask change."""

import pytest

from repro.errors import ReproError
from repro.obs.provenance import (Decision, DecisionLog, NullDecisionLog,
                                  dump_decisions, explain_decision,
                                  load_decisions)


def decision(**overrides) -> Decision:
    base = dict(
        time=0.24, tick=12, strategy="cpu_load", metric=82.3,
        th_min=10.0, th_max=70.0, state="Overload", entry="t1",
        entry_guard="u >= 70.0", exit="t5", exit_guard="nalloc < 16",
        action="allocate", mode="adaptive", core=9, node=2,
        cores_before=4, cores_after=5,
        sample={"cpu_load": 82.3, "ht_bytes": 1e6, "imc_bytes": 4e6,
                "ht_imc_ratio": 0.25, "runnable_threads": 12.0,
                "window": 0.02},
        priorities=(10.0, 4.0, 120.0, 0.0))
    base.update(overrides)
    return Decision(**base)


class TestDecision:
    def test_label_is_fig7_chain(self):
        assert decision().label == "t1-Overload-t5"

    def test_threshold_comparison_per_state(self):
        assert decision().threshold_comparison() == \
            "82.30 >= th_max=70"
        idle = decision(state="Idle", metric=4.0)
        assert idle.threshold_comparison() == "4.00 <= th_min=10"
        stable = decision(state="Stable", metric=40.0)
        assert stable.threshold_comparison() == \
            "th_min=10 < 40.00 < th_max=70"

    def test_records_are_frozen_with_slots(self):
        d = decision()
        with pytest.raises(AttributeError):
            d.metric = 1.0
        assert not hasattr(d, "__dict__")


class TestDecisionLog:
    def test_filters(self):
        log = DecisionLog()
        log.record(decision(tick=0, state="Stable", action=None))
        log.record(decision(tick=1))
        assert len(log) == 2
        assert log.at_tick(1).tick == 1
        assert [d.tick for d in log.with_action()] == [1]
        assert [d.tick for d in log.in_state("Stable")] == [0]
        with pytest.raises(ReproError):
            log.at_tick(99)

    def test_null_log_discards(self):
        log = NullDecisionLog()
        log.record(decision())
        assert len(log) == 0
        assert log.all() == log.with_action() == []
        assert not log.enabled


class TestExplain:
    def test_allocation_account_names_guards_and_thresholds(self):
        text = explain_decision(decision())
        assert "tick 12 @ 0.240s" in text
        assert "t1-Overload-t5" in text
        assert "allocated core 9 (node 2)" in text
        assert "4 -> 5 cores" in text
        assert "cpu_load=82.3%" in text
        assert "82.30 >= th_max=70" in text
        assert "entry t1 (guard: u >= 70.0)" in text
        assert "exit t5 (guard: nalloc < 16)" in text
        assert "mode adaptive picked node 2" in text
        assert "[10, 4, 120, 0]" in text

    def test_no_action_account(self):
        text = explain_decision(decision(
            state="Stable", entry="t2", exit="t3", action=None,
            core=None, node=None, cores_after=4,
            exit_guard="none (always enabled)", priorities=None))
        assert "mask unchanged" in text
        assert "action     none" in text
        assert "not consulted" in text


class TestPersistence:
    def test_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        decisions = [decision(tick=i) for i in range(3)]
        assert dump_decisions(decisions, path) == 3
        assert load_decisions(path) == decisions

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            load_decisions(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"tick": 1}\n')
        with pytest.raises(ReproError):
            load_decisions(path)

    def test_unknown_fields_rejected(self, tmp_path):
        import dataclasses
        import json
        payload = dataclasses.asdict(decision())
        payload["surprise"] = 1
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ReproError):
            load_decisions(path)


class TestEndToEnd:
    """`repro explain` must reconstruct a recorded fig07-style run."""

    @pytest.fixture(scope="class")
    def recorded(self):
        from repro.db.clients import repeat_stream
        from repro.experiments.common import build_system
        from repro.obs import Recorder

        recorder = Recorder()
        sut = build_system(engine="monetdb", mode="adaptive",
                           scale=0.004, sim_scale=0.125, obs=recorder)
        sut.run_clients(4, repeat_stream("q6", 2))
        return recorder, sut

    def test_one_decision_per_tick(self, recorded):
        recorder, sut = recorded
        decisions = recorder.decisions.all()
        assert len(decisions) == sut.controller.ticks > 0
        assert [d.tick for d in decisions] == list(range(len(decisions)))

    def test_guard_values_match_the_model(self, recorded):
        recorder, sut = recorded
        model = sut.controller.model
        for d in recorder.decisions.all():
            assert d.entry_guard == model.guard_text(d.entry)
            # the threshold comparison restates the entry guard's
            # condition with the sampled metric value
            if d.state == "Overload":
                assert d.metric >= d.th_max
            elif d.state == "Idle":
                assert d.metric <= d.th_min
            else:
                assert d.th_min < d.metric < d.th_max
            assert d.strategy == "cpu_load"
            assert d.sample["cpu_load"] == pytest.approx(d.metric)

    def test_every_mask_change_has_a_causal_account(self, recorded):
        recorder, sut = recorded
        changed = recorder.decisions.with_action()
        assert changed, "run never exercised allocate/release"
        for d in changed:
            assert d.core is not None and d.node is not None
            assert d.node == sut.os.topology.node_of_core(d.core)
            if d.action == "allocate":
                assert d.exit == "t5"
                assert d.cores_after == d.cores_before + 1
            else:
                assert d.exit == "t4"
                assert d.cores_after == d.cores_before - 1
            # adaptive mode: the justifying priority snapshot is there
            assert d.priorities is not None
            text = explain_decision(d)
            assert d.entry_guard in text
            assert d.threshold_comparison() in text

    def test_decisions_agree_with_petrinet_counters(self, recorded):
        recorder, _ = recorded
        fired = {}
        for d in recorder.decisions.all():
            fired[d.entry] = fired.get(d.entry, 0) + 1
            fired[d.exit] = fired.get(d.exit, 0) + 1
        for name, count in fired.items():
            counter = recorder.metrics.counter(f"petrinet.fired.{name}")
            assert counter.value == count
