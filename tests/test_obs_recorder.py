"""The recorder facade, the null fast path, and system wiring."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import DecisionLog
from repro.obs.recorder import (NULL_RECORDER, NullRecorder, Recorder,
                                current_recorder, install, recording,
                                uninstall)
from repro.obs.spans import SpanTracer


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Each test starts and ends with no installed recorder."""
    uninstall()
    yield
    uninstall()


class TestRecorder:
    def test_live_recorder_wiring(self):
        rec = Recorder()
        assert rec.enabled
        assert isinstance(rec.metrics, MetricsRegistry)
        assert isinstance(rec.spans, SpanTracer)
        assert isinstance(rec.decisions, DecisionLog)

    def test_host_clock_is_wired_in(self):
        rec = Recorder()
        with rec.spans.span("x"):
            pass
        (span,) = rec.spans.all()
        assert span.duration >= 0.0

    def test_clear_keeps_metrics(self):
        rec = Recorder()
        rec.metrics.counter("c").inc()
        rec.spans.add_complete("s", 0.0, 1.0)
        rec.clear()
        assert rec.metrics.counter("c").value == 1.0
        assert rec.spans.all() == []

    def test_null_recorder_is_disabled_everywhere(self):
        rec = NullRecorder()
        assert not rec.enabled
        assert not rec.metrics.enabled
        assert not rec.spans.enabled
        assert not rec.decisions.enabled
        rec.clear()


class TestInstall:
    def test_default_is_the_null_singleton(self):
        assert current_recorder() is NULL_RECORDER

    def test_install_and_uninstall(self):
        rec = Recorder()
        assert install(rec) is rec
        assert current_recorder() is rec
        uninstall()
        assert current_recorder() is NULL_RECORDER

    def test_recording_context_manager(self):
        with recording() as rec:
            assert current_recorder() is rec
        assert current_recorder() is NULL_RECORDER

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(Recorder()):
                raise RuntimeError("boom")
        assert current_recorder() is NULL_RECORDER


class TestSystemWiring:
    def test_system_defaults_to_installed_recorder(self, small_config):
        from repro.opsys.system import OperatingSystem

        rec = install(Recorder())
        os_ = OperatingSystem(small_config)
        assert os_.obs is rec
        assert os_.scheduler.obs is rec

    def test_system_defaults_to_null_when_none_installed(
            self, small_config):
        from repro.opsys.system import OperatingSystem

        os_ = OperatingSystem(small_config)
        assert os_.obs is NULL_RECORDER

    def test_explicit_obs_argument_wins(self, small_config):
        from repro.opsys.system import OperatingSystem

        install(Recorder())
        mine = Recorder()
        os_ = OperatingSystem(small_config, obs=mine)
        assert os_.obs is mine

    def test_sim_events_counted(self, small_config):
        from repro.opsys.system import OperatingSystem

        rec = Recorder()
        os_ = OperatingSystem(small_config, obs=rec)
        os_.sim.schedule(0.1, lambda: None)
        os_.run(0.2)
        assert rec.metrics.counter("sim.events").value >= 1

    def test_cpuset_mask_telemetry(self, small_config):
        from repro.opsys.system import OperatingSystem

        rec = Recorder()
        os_ = OperatingSystem(small_config, obs=rec)
        n = os_.topology.n_cores
        os_.cpuset.disallow(0)
        os_.cpuset.allow(0)
        metrics = rec.metrics
        assert metrics.counter("cpuset.cores_removed").value == 1
        assert metrics.counter("cpuset.cores_added").value == 1
        assert metrics.gauge("cpuset.allowed_cores").value == n

    def test_null_path_records_nothing_end_to_end(self, small_config):
        """A run without an installed recorder leaves no telemetry."""
        from repro.db.clients import repeat_stream
        from repro.experiments.common import build_system

        sut = build_system(mode="adaptive", scale=0.004,
                           sim_scale=0.125)
        sut.run_clients(1, repeat_stream("q6", 1))
        assert sut.os.obs is NULL_RECORDER
        assert len(sut.os.obs.metrics) == 0
        assert sut.os.obs.spans.all() == []
        assert sut.os.obs.decisions.all() == []
