"""The monitor endpoint: sinks, live families, HTTP, the driver."""

import io
import json
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.errors import ReproError
from repro.obs import Recorder
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.live import LiveBus, live_bus
from repro.obs.metrics import MetricsRegistry
from repro.obs.serve import (JsonlSink, MonitorServer, live_families,
                             load_stream, render_dashboard,
                             render_live_prometheus, run_monitor)


# ----------------------------------------------------------------------
# the streaming sink
# ----------------------------------------------------------------------

class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path)
        sink.write("sample", {"t": 1.0, "series": "x", "value": 2.0})
        sink.write("window", {"t": 1.0, "windows": 1})
        sink.close()
        assert sink.written == 2
        entries = load_stream(path)
        assert [e["kind"] for e in entries] == ["sample", "window"]
        assert entries[0]["value"] == 2.0

    def test_bus_integration_streams_everything(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path)
        bus = LiveBus(taps=())
        bus.add_sink(sink)
        bus.emit("x", 1.0, 42.0)
        bus.flush(SimpleNamespace(
            now=1.0, obs=SimpleNamespace(metrics=MetricsRegistry())))
        sink.close()
        kinds = [e["kind"] for e in load_stream(path)]
        assert kinds == ["sample", "window"]

    def test_invalid_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("nope\n")
        with pytest.raises(ReproError):
            load_stream(path)
        path.write_text('{"no": "kind"}\n')
        with pytest.raises(ReproError):
            load_stream(path)


# ----------------------------------------------------------------------
# live Prometheus families
# ----------------------------------------------------------------------

def monitored_bus() -> LiveBus:
    engine = AlertEngine([AlertRule(name="hot", series="x",
                                    op=">=", value=100.0)])
    bus = LiveBus(taps=(), alerts=engine)
    bus.emit("health.db.oscillation", 1.0, 0.25)
    bus.emit("slo.latency_p95.burn", 1.0, 0.1)
    bus.emit("live.cores.db", 1.0, 3.0)
    bus.emit("live.metric.db", 1.0, 55.0)
    bus.emit("live.throughput", 1.0, 120.0)
    return bus


class TestLiveFamilies:
    def test_per_tenant_series_collapse_into_labeled_families(self):
        families = {name: samples for name, _, _, samples
                    in live_families(monitored_bus().snapshot())}
        assert ("", {"tenant": "db"}, 0.25) in \
            families["repro_health_oscillation"]
        assert ("", {"objective": "latency_p95"}, 0.1) in \
            families["repro_slo_burn"]
        assert ("", {"tenant": "db"}, 3.0) in \
            families["repro_live_cores"]
        assert ("", {"tenant": "db"}, 55.0) in \
            families["repro_live_metric"]
        assert ("", {}, 120.0) in families["repro_live_throughput"]

    def test_alert_and_progress_families(self):
        families = {name: samples for name, _, _, samples
                    in live_families(monitored_bus().snapshot())}
        (sample,) = families["repro_alert_firing"]
        assert sample[1] == {"alert": "hot", "severity": "warning"}
        assert sample[2] == 0  # not firing yet
        assert families["repro_live_windows"] == [("", {}, 0)]
        assert families["repro_live_decisions"] == [("", {}, 0)]

    def test_rendered_exposition_has_help_and_type_once(self):
        text = render_live_prometheus(monitored_bus())
        assert text.count("# TYPE repro_health_oscillation gauge") == 1
        assert text.count("# HELP repro_health_oscillation") == 1
        assert 'repro_health_oscillation{tenant="db"} 0.25' in text
        assert 'repro_slo_burn{objective="latency_p95"} 0.1' in text


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------

def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestMonitorServer:
    @pytest.fixture()
    def server(self):
        recorder = Recorder()
        recorder.metrics.counter("controller.ticks").inc(3)
        server = MonitorServer("127.0.0.1", 0, recorder,
                               monitored_bus())
        server.start()
        yield server
        server.stop()

    def test_metrics_merges_registry_and_live(self, server):
        status, body = _get(
            f"http://127.0.0.1:{server.port}/metrics")
        assert status == 200
        assert "repro_controller_ticks 3" in body
        assert 'repro_health_oscillation{tenant="db"} 0.25' in body

    def test_health_document(self, server):
        status, body = _get(
            f"http://127.0.0.1:{server.port}/health")
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["windows"] == 0
        assert [a["alert"] for a in document["alerts"]] == ["hot"]

    def test_root_and_unknown_paths(self, server):
        status, body = _get(f"http://127.0.0.1:{server.port}/")
        assert status == 200 and "/metrics" in body
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"http://127.0.0.1:{server.port}/nope")
        assert err.value.code == 404


# ----------------------------------------------------------------------
# dashboard + driver
# ----------------------------------------------------------------------

class TestDashboard:
    def test_frame_summarises_health_and_alerts(self):
        bus = monitored_bus()
        frame = render_dashboard(bus.snapshot(), "demo")
        assert "repro monitor — demo" in frame
        assert "alerts: none firing" in frame

    def test_warming_up_before_the_first_flush(self):
        frame = render_dashboard(LiveBus(taps=()).snapshot(), "demo")
        assert "warming up" in frame


class _Result:
    @staticmethod
    def table() -> str:
        return "the-result-table"


def _streaming_runner(samples=8, value=100.0):
    """An 'experiment' that emits into the installed bus and flushes."""

    def runner(**kwargs):
        bus = live_bus()
        registry = MetricsRegistry()
        for i in range(samples):
            t = 0.25 * (i + 1)
            bus.emit("live.throughput", t, value)
            bus.flush(SimpleNamespace(
                now=t, obs=SimpleNamespace(metrics=registry)))
        return _Result()

    return runner


class TestRunMonitor:
    def test_smoke(self, tmp_path):
        out = io.StringIO()
        stream = tmp_path / "stream.jsonl"
        code = run_monitor(
            _streaming_runner(), {}, title="demo", port=0,
            jsonl=stream, refresh=0.01, dashboard=False, out=out)
        assert code == 0
        text = out.getvalue()
        assert "serving http://127.0.0.1:" in text
        assert "the-result-table" in text
        kinds = {e["kind"] for e in load_stream(stream)}
        assert kinds == {"sample", "window"}
        assert live_bus() is None  # uninstalled on the way out

    def test_fail_on_alert(self):
        rule = AlertRule(name="hot", series="live.throughput",
                         op=">=", value=50.0)
        code = run_monitor(
            _streaming_runner(), {}, title="demo", port=0,
            rules=[rule], refresh=0.01, dashboard=False,
            fail_on_alert=True, out=io.StringIO())
        assert code == 1

    def test_worker_errors_propagate(self):
        def broken(**kwargs):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_monitor(broken, {}, title="demo", port=0,
                        refresh=0.01, dashboard=False,
                        out=io.StringIO())
        assert live_bus() is None
