"""Span tracing and the Chrome trace_event exporter."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.spans import (NullSpanTracer, SpanRecord, SpanTracer,
                             chrome_trace_events)


class FakeClock:
    """Deterministic host clock for span tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestNestedSpans:
    def test_context_manager_records_duration(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer"):
            clock.now = 2.0
        (span,) = tracer.all()
        assert span.name == "outer"
        assert span.start == 0.0
        assert span.duration == 2.0
        assert span.track == "host"

    def test_nesting_depth_recorded(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.now = 1.0
        inner, outer = tracer.all()
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0
        assert outer.end >= inner.end

    def test_unbalanced_end_raises(self):
        with pytest.raises(ReproError):
            SpanTracer().end()

    def test_per_tid_stacks_are_independent(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.begin("a", tid=1)
        tracer.begin("b", tid=2)
        assert tracer.open_depth(1) == 1
        tracer.end(tid=2)
        tracer.end(tid=1)
        assert tracer.open_depth(1) == 0
        with pytest.raises(ReproError):
            tracer.end(tid=1)

    def test_negative_clock_drift_clamped(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        tracer.begin("a")
        clock.now = -1.0
        assert tracer.end().duration == 0.0


class TestSimSpans:
    def test_add_complete_and_instant(self):
        tracer = SpanTracer()
        tracer.add_complete("stage:scan", start=0.5, duration=0.25,
                            tid=7, args={"core": 3})
        tracer.instant("mask-change", time=1.0)
        complete, marker = tracer.all()
        assert complete.track == "sim" and complete.args == {"core": 3}
        assert marker.duration == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ReproError):
            SpanTracer().add_complete("x", start=0.0, duration=-1.0)

    def test_of_track_filters(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("host-side"):
            clock.now = 1.0
        tracer.add_complete("sim-side", start=0.0, duration=1.0)
        assert [s.name for s in tracer.of_track("host")] == ["host-side"]
        assert [s.name for s in tracer.of_track("sim")] == ["sim-side"]


class TestChromeExport:
    def test_events_are_valid_trace_event_json(self):
        spans = [
            SpanRecord("q", start=0.5, duration=0.25, track="sim",
                       tid=3, args={"core": 1}),
            SpanRecord("tick", start=0.0, duration=0.0, track="host"),
        ]
        events = chrome_trace_events(spans)
        # must survive a JSON round-trip (the file format)
        parsed = json.loads(json.dumps(events))
        complete, instant = parsed
        assert complete["ph"] == "X"
        assert complete["ts"] == 0.5e6 and complete["dur"] == 0.25e6
        assert complete["pid"] == 2 and complete["tid"] == 3
        assert complete["args"] == {"core": 1}
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["pid"] == 1

    def test_host_and_sim_tracks_get_distinct_pids(self):
        spans = [SpanRecord("a", 0.0, 1.0, track="host"),
                 SpanRecord("b", 0.0, 1.0, track="sim"),
                 SpanRecord("c", 0.0, 1.0, track="custom")]
        pids = [e["pid"] for e in chrome_trace_events(spans)]
        assert pids == [1, 2, 99]
        assert len(set(pids)) == 3

    def test_required_keys_present_on_every_event(self):
        spans = [SpanRecord("a", 0.0, 1.0), SpanRecord("b", 1.0, 0.0)]
        for event in chrome_trace_events(spans):
            assert {"name", "cat", "ts", "pid", "tid", "ph"} <= set(event)


class TestNullTracer:
    def test_span_returns_shared_context(self):
        tracer = NullSpanTracer()
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("a"):
            pass
        tracer.begin("x")
        tracer.end()
        tracer.add_complete("y", 0.0, 1.0)
        tracer.instant("z", 0.0)
        assert len(tracer) == 0
        assert tracer.all() == []
        assert tracer.open_depth() == 0
        assert not tracer.enabled
