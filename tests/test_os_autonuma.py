"""AutoNUMA page migration (optional kernel feature)."""

import pytest

from repro.config import SchedulerConfig
from repro.errors import ConfigError
from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.vm import VirtualMemory
from repro.opsys.workitem import ListWorkSource, WorkItem


@pytest.fixture
def vm():
    return VirtualMemory(Machine(small_numa()), numa_balancing=True,
                         migration_streak=3)


def test_streak_of_remote_batches_migrates_page(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)          # first touch: home = 0
    for _ in range(2):
        vm.touch_pages([page], node=1)
        assert vm.machine.memory.home(page) == 0
    vm.touch_pages([page], node=1)          # third remote batch
    assert vm.machine.memory.home(page) == 1
    assert vm.counters.get("numa_page_migrations", 1) == 1


def test_local_access_resets_streak(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    vm.touch_pages([page], node=1)
    vm.touch_pages([page], node=1)
    vm.touch_pages([page], node=0)          # home-node access resets
    vm.touch_pages([page], node=1)
    vm.touch_pages([page], node=1)
    assert vm.machine.memory.home(page) == 0


def test_alternating_nodes_never_migrate(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    for node in (1, 0, 1, 0, 1, 0):
        vm.touch_pages([page], node=node)
    assert vm.machine.memory.home(page) == 0
    assert vm.counters.total("numa_page_migrations") == 0


def test_migration_counts_fabric_traffic(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    before = vm.counters.total("ht_tx_bytes")
    for _ in range(3):
        vm.touch_pages([page], node=1)
    moved = vm.counters.total("ht_tx_bytes") - before
    assert moved >= vm.machine.memory.page_bytes


def test_migration_invalidates_caches(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    vm.machine.touch(0.0, 0, [page])        # resident in socket 0's L3
    assert page in vm.machine.caches[0]
    vm.migrate_page(page, 1)
    assert page not in vm.machine.caches[0]


def test_migrate_to_same_home_is_a_noop(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    vm.migrate_page(page, 0)
    assert vm.counters.total("numa_page_migrations") == 0


def test_disabled_by_default():
    vm = VirtualMemory(Machine(small_numa()))
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    for _ in range(10):
        vm.touch_pages([page], node=1)
    assert vm.machine.memory.home(page) == 0


def test_config_validation():
    with pytest.raises(ConfigError):
        SchedulerConfig(numa_migration_streak=0)


def test_end_to_end_with_scheduler():
    """Threads hammering remote data pull it to their node."""
    os_ = OperatingSystem(small_numa(),
                          SchedulerConfig(numa_balancing=True,
                                          numa_migration_streak=2))
    pages = list(os_.machine.memory.allocate(8))
    for page in pages:
        os_.machine.memory.place(page, 1)   # data on node 1
    # pin workers on node 0 and make them rescan the data repeatedly
    items = [WorkItem("scan", reads=pages * 6, cycles=5e6)
             for _ in range(2)]
    for i, item in enumerate(items):
        os_.spawn_thread(ListWorkSource([item]), pinned_core=i)
    os_.run_until_idle()
    migrated = os_.counters.total("numa_page_migrations")
    assert migrated > 0
    homes = {os_.machine.memory.home(p) for p in pages}
    assert 0 in homes
