"""Cpuset masks: changes, bounds, notification."""

import pytest

from repro.errors import AllocationError
from repro.opsys.cpuset import CpuSet


def test_defaults_to_all_cores():
    cpuset = CpuSet(4)
    assert cpuset.allowed() == frozenset({0, 1, 2, 3})
    assert len(cpuset) == 4


def test_initial_mask_respected():
    cpuset = CpuSet(4, initial=[1, 3])
    assert cpuset.allowed_sorted() == [1, 3]
    assert 0 not in cpuset
    assert 3 in cpuset


def test_allow_and_disallow():
    cpuset = CpuSet(4, initial=[0])
    cpuset.allow(2)
    assert cpuset.is_allowed(2)
    cpuset.disallow(2)
    assert not cpuset.is_allowed(2)


def test_double_allow_rejected():
    cpuset = CpuSet(4, initial=[0])
    with pytest.raises(AllocationError):
        cpuset.allow(0)


def test_disallow_absent_rejected():
    cpuset = CpuSet(4, initial=[0])
    with pytest.raises(AllocationError):
        cpuset.disallow(1)


def test_last_core_protected():
    cpuset = CpuSet(4, initial=[0])
    with pytest.raises(AllocationError):
        cpuset.disallow(0)


def test_out_of_range_rejected():
    cpuset = CpuSet(4)
    with pytest.raises(AllocationError):
        cpuset.allow(4)
    with pytest.raises(AllocationError):
        CpuSet(4, initial=[9])


def test_empty_initial_rejected():
    with pytest.raises(AllocationError):
        CpuSet(4, initial=[])


def test_set_mask_atomic_diff():
    cpuset = CpuSet(4, initial=[0, 1])
    events = []
    cpuset.subscribe(lambda added, removed: events.append(
        (sorted(added), sorted(removed))))
    cpuset.set_mask([1, 2, 3])
    assert events == [([2, 3], [0])]
    assert cpuset.allowed_sorted() == [1, 2, 3]


def test_set_mask_empty_rejected():
    cpuset = CpuSet(4)
    with pytest.raises(AllocationError):
        cpuset.set_mask([])


def test_notifications_on_allow_disallow():
    cpuset = CpuSet(4, initial=[0])
    events = []
    cpuset.subscribe(lambda a, r: events.append((set(a), set(r))))
    cpuset.allow(1)
    cpuset.disallow(0)
    assert events == [({1}, set()), (set(), {0})]


def test_noop_set_mask_not_notified():
    cpuset = CpuSet(4, initial=[0, 1])
    events = []
    cpuset.subscribe(lambda a, r: events.append(1))
    cpuset.set_mask([0, 1])
    assert events == []
