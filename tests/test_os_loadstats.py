"""Load sampling: busy/useful percentages over windows."""

import pytest

from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa
from repro.opsys.cpuset import CpuSet
from repro.opsys.loadstats import LoadSampler


@pytest.fixture
def setup():
    machine = Machine(small_numa())
    cpuset = CpuSet(machine.topology.n_cores)
    return machine, cpuset, LoadSampler(machine, cpuset)


def test_unprimed_sample_is_zero(setup):
    machine, _, sampler = setup
    sample = sampler.sample(1.0)
    assert sample.window == 0.0
    assert sample.average_allocated == 0.0


def test_busy_percentage_over_window(setup):
    machine, _, sampler = setup
    sampler.prime(0.0)
    machine.account_busy(0, 0.5)
    sample = sampler.sample(1.0)
    assert sample.per_core_busy[0] == pytest.approx(50.0)
    assert sample.per_core_busy[1] == 0.0


def test_average_allocated_respects_mask(setup):
    machine, cpuset, sampler = setup
    cpuset.set_mask([0, 1])
    sampler.prime(0.0)
    machine.account_busy(0, 1.0)
    machine.account_busy(2, 1.0)  # not in the mask: ignored
    sample = sampler.sample(1.0)
    assert sample.allocated_cores == (0, 1)
    assert sample.average_allocated == pytest.approx(50.0)


def test_useful_flavour_tracks_useful_counter(setup):
    machine, _, sampler = setup
    sampler.prime(0.0)
    machine.account_busy(0, 1.0)
    machine.counters.add("useful_time", 0, 0.25)
    sample = sampler.sample(1.0)
    assert sample.per_core_useful[0] == pytest.approx(25.0)
    assert sample.average_useful_allocated < sample.average_allocated


def test_percentages_clamped_to_100(setup):
    machine, _, sampler = setup
    sampler.prime(0.0)
    machine.account_busy(0, 5.0)  # more busy than wall (batched account)
    sample = sampler.sample(1.0)
    assert sample.per_core_busy[0] == 100.0


def test_windows_are_consecutive(setup):
    machine, _, sampler = setup
    sampler.prime(0.0)
    machine.account_busy(0, 1.0)
    first = sampler.sample(1.0)
    second = sampler.sample(2.0)  # no new busy time
    assert first.per_core_busy[0] == pytest.approx(100.0)
    assert second.per_core_busy[0] == 0.0


def test_average_node_over_core_group(setup):
    machine, _, sampler = setup
    sampler.prime(0.0)
    machine.account_busy(0, 1.0)
    sample = sampler.sample(1.0)
    node0_cores = list(machine.topology.cores_of_node(0))
    assert sample.average_node(node0_cores) == pytest.approx(50.0)
    assert sample.average_node([]) == 0.0
