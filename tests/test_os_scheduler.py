"""Scheduler: placement, execution, balancing, cpuset enforcement."""

from collections import deque

import pytest

from repro.config import SchedulerConfig
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.thread import ThreadState
from repro.opsys.workitem import ListWorkSource, WorkItem
from repro.sim.tracing import MigrationRecord


def make_os(**scheduler_kwargs) -> OperatingSystem:
    return OperatingSystem(small_numa(),
                           SchedulerConfig(**scheduler_kwargs))


def scan_item(os_, n_pages=8, cycles=2e6, label="scan", on_complete=None,
              node=None, query=""):
    pages = list(os_.machine.memory.allocate(n_pages))
    if node is not None:
        for page in pages:
            os_.machine.memory.place(page, node)
    return WorkItem(label, reads=pages, cycles=cycles,
                    on_complete=on_complete, query_name=query)


class StagedSource:
    """Two-stage source used to test blocking and waking."""

    def __init__(self, os_):
        self.os = os_
        self.stage_two_published = False
        self._items = deque([scan_item(os_, label="stage1",
                                       on_complete=self._stage1_done)])
        self._waiters = []
        self.finished_flag = False

    def _stage1_done(self, item):
        self.stage_two_published = True
        self._items.append(scan_item(self.os, label="stage2",
                                     on_complete=self._stage2_done))
        waiters, self._waiters = self._waiters, []
        for thread in waiters:
            self.os.wake(thread)

    def _stage2_done(self, item):
        self.finished_flag = True
        waiters, self._waiters = self._waiters, []
        for thread in waiters:
            self.os.wake(thread)

    def next_item(self, thread):
        if self._items:
            return self._items.popleft()
        return None

    @property
    def finished(self):
        return self.finished_flag and not self._items

    def register_waiter(self, thread):
        self._waiters.append(thread)


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self):
        os_ = make_os()
        done = []
        source = ListWorkSource([scan_item(
            os_, on_complete=lambda it: done.append(it.label))])
        thread = os_.spawn_thread(source)
        os_.run_until_idle()
        assert done == ["scan"]
        assert thread.state is ThreadState.DONE
        assert thread.exited_at is not None

    def test_on_exit_callback_fires(self):
        os_ = make_os()
        exited = []
        source = ListWorkSource([scan_item(os_)])
        os_.spawn_thread(source, on_exit=lambda t: exited.append(t.tid))
        os_.run_until_idle()
        assert len(exited) == 1

    def test_work_conservation_across_threads(self):
        os_ = make_os()
        done = []
        for _ in range(10):
            source = ListWorkSource([scan_item(
                os_, on_complete=lambda it: done.append(1))])
            os_.spawn_thread(source)
        os_.run_until_idle()
        assert len(done) == 10

    def test_busy_time_recorded(self):
        os_ = make_os()
        os_.spawn_thread(ListWorkSource([scan_item(os_)]))
        os_.run_until_idle()
        assert os_.counters.total("busy_time") > 0
        assert os_.counters.total("useful_time") > 0
        assert (os_.counters.total("useful_time")
                <= os_.counters.total("busy_time"))

    def test_pure_compute_item(self):
        os_ = make_os()
        done = []
        item = WorkItem("compute", cycles=5e6,
                        on_complete=lambda it: done.append(1))
        os_.spawn_thread(ListWorkSource([item]))
        os_.run_until_idle()
        assert done == [1]
        # pure compute: useful ~ busy
        assert os_.counters.total("useful_time") == pytest.approx(
            os_.counters.total("busy_time"), rel=0.01)

    def test_long_item_spans_many_quanta(self):
        os_ = make_os(quantum=0.001)
        thread = os_.spawn_thread(ListWorkSource(
            [scan_item(os_, n_pages=64, cycles=5e7)]))
        os_.run_until_idle()
        assert thread.dispatches > 1

    def test_tasks_counter_counts_dispatches(self):
        os_ = make_os()
        os_.spawn_thread(ListWorkSource([scan_item(os_)]))
        os_.run_until_idle()
        assert os_.counters.total("tasks") >= 1


class TestPlacement:
    def test_spawn_spreads_over_idle_cores(self):
        os_ = make_os()
        threads = [os_.spawn_thread(ListWorkSource(
            [scan_item(os_, cycles=5e7, n_pages=64)]))
            for _ in range(4)]
        cores = {t.core for t in threads}
        assert cores == {0, 1, 2, 3}

    def test_pinned_thread_stays_on_core(self):
        os_ = make_os()
        thread = os_.spawn_thread(
            ListWorkSource([scan_item(os_)]), pinned_core=3)
        assert thread.core == 3
        os_.run_until_idle()
        assert thread.migrations == 0

    def test_node_affinity_prefers_node(self):
        os_ = make_os()
        thread = os_.spawn_thread(
            ListWorkSource([scan_item(os_)]), pinned_node=1)
        assert os_.topology.node_of_core(thread.core) == 1


class TestBlockingAndWaking:
    def test_thread_blocks_until_next_stage(self):
        os_ = make_os()
        source = StagedSource(os_)
        t1 = os_.spawn_thread(source, name="w1")
        t2 = os_.spawn_thread(source, name="w2")
        os_.run_until_idle()
        assert source.stage_two_published
        assert source.finished
        assert t1.state is ThreadState.DONE
        assert t2.state is ThreadState.DONE


class TestLoadBalancing:
    def test_idle_pull_rescues_piled_queue(self):
        os_ = make_os(balance_interval=10.0)  # periodic balancer silent
        # two threads forced onto core 0's queue
        sources = [ListWorkSource([scan_item(os_, n_pages=64,
                                             cycles=5e7)])
                   for _ in range(2)]
        t1 = os_.spawn_thread(sources[0])
        # place the second thread on the same core artificially
        t2 = os_.spawn_thread(sources[1])
        os_.scheduler._queues[t2.core].remove(t2) \
            if t2 in os_.scheduler._queues[t2.core] else None
        os_.run_until_idle()
        # both finish; no deadlock
        assert sources[0].finished and sources[1].finished

    def test_steals_recorded_under_oversubscription(self):
        os_ = make_os(balance_interval=0.001)
        for _ in range(12):
            os_.spawn_thread(ListWorkSource(
                [scan_item(os_, n_pages=32, cycles=3e7)]))
        os_.run_until_idle()
        assert os_.counters.total("stolen_tasks") > 0

    def test_pinned_threads_never_stolen_cross_node(self):
        os_ = make_os(balance_interval=0.001)
        pinned = [os_.spawn_thread(
            ListWorkSource([scan_item(os_, n_pages=32, cycles=2e7)]),
            pinned_core=0) for _ in range(6)]
        os_.run_until_idle()
        for thread in pinned:
            assert thread.migrations == 0


class TestCpusetEnforcement:
    def test_threads_evicted_from_released_core(self):
        os_ = make_os()
        thread = os_.spawn_thread(ListWorkSource(
            [scan_item(os_, n_pages=128, cycles=1e8)]))
        first_core = thread.core
        os_.run(until=0.002)
        os_.cpuset.disallow(first_core)
        os_.run_until_idle()
        assert thread.state is ThreadState.DONE
        assert thread.core != first_core

    def test_shrunk_mask_confines_execution(self):
        os_ = make_os()
        os_.cpuset.set_mask([0])
        threads = [os_.spawn_thread(ListWorkSource(
            [scan_item(os_, n_pages=16)])) for _ in range(4)]
        os_.run_until_idle()
        for thread in threads:
            assert thread.state is ThreadState.DONE
        # only core 0 accumulated busy time
        busy = os_.counters.by_index("busy_time")
        assert set(busy) == {0}

    def test_migration_records_mask_eviction(self):
        os_ = make_os()
        thread = os_.spawn_thread(ListWorkSource(
            [scan_item(os_, n_pages=128, cycles=1e8)]))
        os_.run(until=0.002)
        os_.cpuset.disallow(thread.core)
        os_.run_until_idle()
        migrations = os_.tracer.of(MigrationRecord)
        assert any(not m.stolen for m in migrations)


class TestQueryAttribution:
    def test_per_query_counters(self):
        os_ = make_os()
        item = scan_item(os_, n_pages=8, query="qx")
        os_.spawn_thread(ListWorkSource([item]))
        os_.run_until_idle()
        assert os_.counters.get("query_imc_bytes", "qx") > 0
        assert os_.counters.get("query_busy_time", "qx") > 0
