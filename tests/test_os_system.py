"""The OperatingSystem facade."""

import pytest

from repro.config import SchedulerConfig
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.workitem import ListWorkSource, WorkItem
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceRecorder


def test_boot_wires_components():
    os_ = OperatingSystem(small_numa())
    assert os_.topology.n_cores == 4
    assert os_.cpuset.n_cores == 4
    assert os_.scheduler.machine is os_.machine
    assert os_.vm.machine is os_.machine
    assert os_.counters is os_.machine.counters
    assert os_.now == 0.0


def test_initial_mask_honoured():
    os_ = OperatingSystem(small_numa(), initial_mask=[1, 2])
    assert os_.cpuset.allowed_sorted() == [1, 2]


def test_external_simulator_and_tracer():
    sim = Simulator()
    tracer = TraceRecorder()
    os_ = OperatingSystem(small_numa(), tracer=tracer, sim=sim)
    assert os_.sim is sim
    assert os_.tracer is tracer


def test_scheduler_config_propagates_to_vm():
    os_ = OperatingSystem(small_numa(),
                          SchedulerConfig(numa_balancing=True,
                                          numa_migration_streak=5))
    assert os_.vm.numa_balancing is True
    assert os_.vm.migration_streak == 5
    assert os_.scheduler.config.numa_balancing is True


def test_run_until_idle_completes_work():
    os_ = OperatingSystem(small_numa())
    pages = list(os_.machine.memory.allocate(4))
    done = []
    os_.spawn_thread(ListWorkSource(
        [WorkItem("w", reads=pages, cycles=1e6,
                  on_complete=lambda it: done.append(1))]))
    events = os_.run_until_idle()
    assert done == [1]
    assert events > 0
    assert os_.now > 0


def test_run_until_bound():
    os_ = OperatingSystem(small_numa())
    os_.sim.schedule(5.0, lambda: None)
    os_.run(until=1.0)
    assert os_.now == 1.0


def test_wake_is_safe_on_non_blocked_threads():
    os_ = OperatingSystem(small_numa())
    thread = os_.spawn_thread(ListWorkSource(
        [WorkItem("w", cycles=1e6)]))
    os_.wake(thread)  # READY/RUNNING: no-op, no error
    os_.run_until_idle()
