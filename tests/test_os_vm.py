"""Virtual memory: first touch, remote-mapping faults, residency feed."""

import pytest

from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa
from repro.opsys.thread import SimThread
from repro.opsys.vm import VirtualMemory
from repro.opsys.workitem import ListWorkSource


@pytest.fixture
def vm():
    return VirtualMemory(Machine(small_numa()))


def _thread():
    return SimThread(ListWorkSource())


def test_first_touch_places_and_faults(vm):
    pages = list(vm.machine.memory.allocate(3))
    faults = vm.touch_pages(pages, node=1)
    assert faults == 3
    assert all(vm.machine.memory.home(p) == 1 for p in pages)
    assert vm.machine.counters.get("minor_faults", 1) == 3


def test_repeat_touch_same_node_no_fault(vm):
    pages = list(vm.machine.memory.allocate(2))
    vm.touch_pages(pages, node=0)
    assert vm.touch_pages(pages, node=0) == 0


def test_remote_mapping_faults_once_per_node(vm):
    pages = list(vm.machine.memory.allocate(2))
    vm.touch_pages(pages, node=0)
    assert vm.touch_pages(pages, node=1) == 2   # remote-access faults
    assert vm.touch_pages(pages, node=1) == 0   # already mapped there
    # home never moves
    assert all(vm.machine.memory.home(p) == 0 for p in pages)


def test_nodes_mapping_tracks_mappers(vm):
    (page,) = vm.machine.memory.allocate(1)
    vm.touch_pages([page], node=0)
    vm.touch_pages([page], node=1)
    assert vm.nodes_mapping(page) == [0, 1]


def test_thread_residency_histogram_counts_batches(vm):
    pages = list(vm.machine.memory.allocate(4))
    thread = _thread()
    vm.touch_pages(pages, node=0, thread=thread)
    assert thread.pages_by_node[0] == 4
    # a second batch over the same pages counts again (access volume)
    vm.touch_pages(pages, node=0, thread=thread)
    assert thread.pages_by_node[0] == 8


def test_thread_histogram_attributes_to_home_node(vm):
    pages = list(vm.machine.memory.allocate(2))
    vm.touch_pages(pages, node=1)           # homes on node 1
    thread = _thread()
    vm.touch_pages(pages, node=0, thread=thread)  # accessed from node 0
    assert thread.pages_by_node == {1: 2}


def test_forget_releases_pages_and_mappings(vm):
    pages = list(vm.machine.memory.allocate(2))
    vm.touch_pages(pages, node=0)
    vm.forget(pages)
    assert vm.machine.memory.pages_on_node(0) == 0
    assert vm.nodes_mapping(pages[0]) == []
    # re-touch first-touches again
    assert vm.touch_pages(pages, node=1) == 2


def test_total_minor_faults(vm):
    pages = list(vm.machine.memory.allocate(3))
    vm.touch_pages(pages, node=0)
    vm.touch_pages(pages, node=1)
    assert vm.total_minor_faults() == 6
