"""Work items and the list work source."""

import pytest

from repro.errors import SchedulerError
from repro.opsys.workitem import ListWorkSource, WorkItem


def test_progress_counters():
    item = WorkItem("scan", reads=list(range(10)), writes=[100, 101],
                    cycles=1200.0)
    assert item.total_pages == 12
    assert item.remaining_pages == 12
    assert item.cycles_per_page() == pytest.approx(100.0)
    assert not item.done


def test_take_reads_then_writes():
    item = WorkItem("scan", reads=[0, 1, 2], writes=[10, 11])
    assert list(item.take_reads(2)) == [0, 1]
    assert list(item.take_reads(5)) == [2]
    assert list(item.take_writes(5)) == [10, 11]
    assert item.remaining_pages == 0


def test_retire_cycles_clamped():
    item = WorkItem("x", cycles=100.0)
    item.retire_cycles(500.0)
    assert item.remaining_cycles == 0.0


def test_done_requires_pages_and_cycles():
    item = WorkItem("x", reads=[1], cycles=100.0)
    item.retire_cycles(100.0)
    assert not item.done
    item.take_reads(1)
    assert item.done


def test_force_complete_cycles():
    item = WorkItem("x", cycles=1e6)
    item.force_complete_cycles()
    assert item.remaining_cycles == 0.0


def test_fixed_cycles_add_to_total():
    item = WorkItem("x", reads=[1], cycles=100.0, fixed_cycles=50.0)
    assert item.total_cycles == 150.0


def test_negative_cycles_rejected():
    with pytest.raises(SchedulerError):
        WorkItem("x", cycles=-1.0)


def test_pure_compute_item_has_zero_cpp():
    item = WorkItem("x", cycles=100.0)
    assert item.cycles_per_page() == 0.0


class TestListWorkSource:
    def test_fifo_order(self):
        items = [WorkItem(f"i{k}") for k in range(3)]
        source = ListWorkSource(items)
        assert source.next_item(None) is items[0]
        assert source.next_item(None) is items[1]

    def test_finished_when_empty(self):
        source = ListWorkSource([WorkItem("only")])
        assert not source.finished
        source.next_item(None)
        assert source.finished
        assert source.next_item(None) is None

    def test_push_extends(self):
        source = ListWorkSource()
        assert source.finished
        source.push(WorkItem("late"))
        assert not source.finished

    def test_register_waiter_is_an_error(self):
        source = ListWorkSource()
        with pytest.raises(SchedulerError):
            source.register_waiter(None)
