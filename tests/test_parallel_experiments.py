"""Parallel fan-out produces bit-identical results to serial runs.

These tests exercise the real spawn pool, so they carry worker start-up
cost; the parameterisations are kept minimal.  The fig16 test is the
parallel half of the golden-trace contract: the fan-out may not perturb
a single exported byte.
"""

from __future__ import annotations

import pathlib

from repro.experiments import fig13_scheduling, fig16_migration_modes
from repro.experiments.trials import run_trials
from repro.runner.pool import last_pool_stats
from repro.sim.export import dump_records

GOLDEN = (pathlib.Path(__file__).parent / "fixtures" / "golden"
          / "fig16_trace.jsonl")

#: must match tests/test_golden_trace.py FIG16_PARAMS
FIG16_PARAMS = dict(repetitions=1, warmup=1, scale=0.01, sim_scale=1.0)


def test_fig13_parallel_equals_serial():
    kwargs = dict(users=(1, 4), repetitions=1)
    serial = fig13_scheduling.run(**kwargs)
    par = fig13_scheduling.run(**kwargs, parallel=2)
    assert list(par.cells) == list(serial.cells)
    assert par.cells == serial.cells


def test_fig16_parallel_trace_is_bit_identical_to_golden(tmp_path):
    if not GOLDEN.exists():
        import pytest
        pytest.skip("golden fixture missing")
    result = fig16_migration_modes.run(**FIG16_PARAMS, parallel=2)
    records = [r for cell in result.cells.values() for r in cell.records]
    path = tmp_path / "trace.jsonl"
    dump_records(records, path)
    assert path.read_bytes() == GOLDEN.read_bytes()
    # fig16's fan-out ships a warm capture: its bulk atoms must have
    # crossed once via shared memory, not inside each task pickle
    stats = last_pool_stats()
    assert stats is not None and stats.shm_bytes > 0
    assert stats.ipc_task_bytes < stats.shm_bytes
    assert stats.tasks == len(result.cells)
    assert 0.0 < stats.mean_utilisation() <= 1.0


def _trial_runner(seed):
    return seed * 2


def test_run_trials_parallel_matches_serial():
    spec = "tests.test_parallel_experiments:_trial_runner"
    serial = run_trials(spec, extract=lambda r: {"value": r},
                        seeds=(1, 2, 3))
    par = run_trials(spec, extract=lambda r: {"value": r},
                     seeds=(1, 2, 3), parallel=2)
    assert par.samples == serial.samples == {"value": [2.0, 4.0, 6.0]}
