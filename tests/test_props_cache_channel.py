"""Property-based tests: cache LRU and FIFO-channel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import SharedCache
from repro.hardware.interconnect import FifoChannel

pages = st.integers(min_value=0, max_value=50)


@given(st.integers(min_value=1, max_value=8),
       st.lists(pages, min_size=1, max_size=200))
@settings(max_examples=60)
def test_cache_never_exceeds_capacity(capacity, accesses):
    cache = SharedCache(capacity)
    for page in accesses:
        cache.access(page)
        assert len(cache) <= capacity


@given(st.integers(min_value=1, max_value=8),
       st.lists(pages, min_size=1, max_size=200))
@settings(max_examples=60)
def test_cache_stats_sum_to_accesses(capacity, accesses):
    cache = SharedCache(capacity)
    for page in accesses:
        cache.access(page)
    assert cache.hits + cache.misses == len(accesses)
    assert cache.evictions == cache.misses - len(cache)


@given(st.integers(min_value=1, max_value=8),
       st.lists(pages, min_size=1, max_size=100))
@settings(max_examples=60)
def test_most_recent_access_is_always_resident(capacity, accesses):
    cache = SharedCache(capacity)
    for page in accesses:
        cache.access(page)
        assert page in cache
        assert cache.resident_pages()[-1] == page


@given(st.integers(min_value=2, max_value=8),
       st.lists(pages, min_size=2, max_size=100))
@settings(max_examples=60)
def test_lru_eviction_order(capacity, accesses):
    """After any trace, residents ordered cold->hot match recency."""
    cache = SharedCache(capacity)
    last_access = {}
    for step, page in enumerate(accesses):
        cache.access(page)
        last_access[page] = step
    resident = cache.resident_pages()
    recencies = [last_access[p] for p in resident]
    assert recencies == sorted(recencies)


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=10, allow_nan=False),
    st.integers(min_value=0, max_value=10_000)),
    min_size=1, max_size=50))
@settings(max_examples=60)
def test_channel_completions_monotone_and_capped(requests):
    """FIFO channel: completions never reorder and total throughput is
    bounded by bandwidth."""
    bandwidth = 1000.0
    channel = FifoChannel(bandwidth)
    requests = sorted(requests, key=lambda r: r[0])
    completions = []
    total_bytes = 0
    for now, n_bytes in requests:
        completions.append(channel.reserve(now, n_bytes))
        total_bytes += n_bytes
    assert completions == sorted(completions)
    first_start = requests[0][0]
    # all work finishes no earlier than the bandwidth bound allows
    assert completions[-1] >= first_start + 0  # sanity
    assert completions[-1] >= total_bytes / bandwidth \
        - 1e-9 + 0 * first_start


@given(st.floats(min_value=0, max_value=100, allow_nan=False),
       st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60)
def test_channel_completion_never_before_request(now, n_bytes):
    channel = FifoChannel(2000.0)
    done = channel.reserve(now, n_bytes)
    assert done >= now
    assert done - now >= n_bytes / 2000.0 - 1e-12
