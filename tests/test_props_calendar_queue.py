"""Property tests: the tiered calendar queue vs the seed's global heap.

The simulator's event core (:mod:`repro.sim.engine`) replaced a single
binary heap with a two-tier calendar queue (near-time buckets batch-
dequeued per timestamp + a far-future heap).  Its contract is that
delivery order, tie-breaking, lazy-cancel/reschedule/revive semantics
and the ``until``/``max_events`` edge cases are **bit-identical** to the
seed implementation.  :class:`ReferenceSimulator` below is a straight
reimplementation of the seed loop — one global ``(time, seq)`` heap,
lazy cancellation, no tiers, no batching — and Hypothesis drives both
engines through the same randomised command scripts, comparing the full
delivery logs, clocks and counters after every run.

``tests/test_props_sim_fastpath.py`` covers the domain layers on top;
this file pins the queue kernel itself.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import _COMPACT_MIN_DEAD, _NEAR_SPAN, Simulator


class _RefEvent:
    __slots__ = ("time", "seq", "fn", "args", "cancelled", "delivered")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.delivered = False


class ReferenceSimulator:
    """The seed event loop: one heap, ``(time, seq)`` order, lazy cancel."""

    def __init__(self):
        self._heap = []
        self._now = 0.0
        self._seq = 0
        self._live = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise SimulationError("past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        if time < self._now:
            raise SimulationError("past")
        self._seq += 1
        event = _RefEvent(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        return event

    def reschedule(self, event, delay):
        if delay < 0:
            raise SimulationError("past")
        if event.cancelled:
            return self.schedule(delay, event.fn, *event.args)
        if not event.delivered:
            raise SimulationError("still queued")
        self._seq += 1
        event.time = self._now + delay
        event.seq = self._seq
        event.cancelled = False
        event.delivered = False
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._live += 1
        return event

    def cancel(self, event):
        if not (event.cancelled or event.delivered):
            event.cancelled = True
            self._live -= 1

    def pending(self):
        return self._live

    def run(self, until=None, max_events=None):
        heap = self._heap
        delivered = 0
        while heap:
            if max_events is not None and delivered >= max_events:
                break
            time, _seq, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and time > until:
                if self._live:
                    self._now = until
                break
            heapq.heappop(heap)
            self._live -= 1
            event.delivered = True
            self._now = time
            event.fn(*event.args)
            delivered += 1
        return delivered


# ---------------------------------------------------------------------
# command scripts


class _Callback:
    """Deterministic callback: logs, and low tags spawn one child.

    The spawned child lands at an already-queued timestamp often enough
    to exercise the live-bucket append (events scheduled *during* a
    same-timestamp batch must be delivered inside that batch, in seq
    order — the contract the calendar queue's batch dispatch must keep).
    """

    def __init__(self, sim, log, tag):
        self.sim = sim
        self.log = log
        self.tag = tag

    def __call__(self):
        self.log.append((self.sim.now, self.tag))
        if self.tag % 4 == 0 and self.tag < 1000:
            child_delay = 0.0 if self.tag % 8 == 0 else 0.002
            self.sim.schedule(child_delay, _Callback(
                self.sim, self.log, self.tag + 1000))


#: delays chosen to collide on exact timestamps (same-time batches) and
#: to straddle the near-tier horizon (events beyond ``_NEAR_SPAN`` take
#: the far heap and must migrate back without reordering)
_DELAYS = st.sampled_from(
    [0.0, 0.001, 0.002, 0.004, 0.0499, _NEAR_SPAN, 0.0501,
     0.12, 0.7, 2.5])

_COMMANDS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(0, 255)),
        st.tuples(st.just("reschedule"), st.integers(0, 255), _DELAYS),
        st.tuples(st.just("run_until"), _DELAYS),
        st.tuples(st.just("run_capped"), st.integers(0, 5)),
        st.tuples(st.just("drain"),),
    ),
    min_size=1, max_size=60)


def _interpret(sim, log, commands):
    """Run one command script against one engine; returns run() tallies."""
    events = []
    tag = 0
    tallies = []
    for command in commands:
        op = command[0]
        if op == "schedule":
            tag += 1
            events.append(sim.schedule(command[1],
                                       _Callback(sim, log, tag)))
        elif op == "cancel":
            if events:
                sim.cancel(events[command[1] % len(events)])
        elif op == "reschedule":
            if events:
                event = events[command[1] % len(events)]
                if event.delivered or event.cancelled:
                    events.append(sim.reschedule(event, command[2]))
        elif op == "run_until":
            tallies.append(sim.run(until=sim.now + command[1]))
        elif op == "run_capped":
            tallies.append(sim.run(max_events=command[1]))
        else:  # drain
            tallies.append(sim.run())
    tallies.append(sim.run())
    return tallies


@settings(max_examples=200, deadline=None)
@given(commands=_COMMANDS)
def test_calendar_queue_matches_reference_heap(commands):
    real, ref = Simulator(), ReferenceSimulator()
    real_log, ref_log = [], []
    real_tallies = _interpret(real, real_log, commands)
    ref_tallies = _interpret(ref, ref_log, commands)
    # identical delivery sequence (times and payloads), bit-for-bit
    assert real_log == ref_log
    assert real_tallies == ref_tallies
    assert real.now == ref.now
    assert real.pending() == ref.pending() == 0


@settings(max_examples=100, deadline=None)
@given(commands=_COMMANDS, bound=_DELAYS)
def test_partial_runs_leave_identical_queues(commands, bound):
    """Stop mid-stream: the clock, the pending count and everything the
    queue still holds must agree with the reference."""
    real, ref = Simulator(), ReferenceSimulator()
    real_log, ref_log = [], []
    for sim, log in ((real, real_log), (ref, ref_log)):
        events = []
        tag = 0
        for command in commands:
            if command[0] == "schedule":
                tag += 1
                events.append(sim.schedule(command[1],
                                           _Callback(sim, log, tag)))
            elif command[0] == "cancel" and events:
                sim.cancel(events[command[1] % len(events)])
        sim.run(until=bound)
    assert real_log == ref_log
    assert real.now == ref.now
    assert real.pending() == ref.pending()
    # the remainders drain identically too
    assert real.run() == ref.run()
    assert real_log == ref_log


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_compaction_threshold_crossings_never_reorder(seed):
    """Heavy cancellation drives the queue across the compaction
    threshold repeatedly; the reference never compacts — delivery must
    match regardless."""
    import random
    rng = random.Random(seed)
    times = [rng.choice([0.0, 0.001, 0.003, 0.06, 0.3])
             for _ in range(3 * _COMPACT_MIN_DEAD)]
    doomed = [rng.random() < 0.7 for _ in times]

    real, ref = Simulator(), ReferenceSimulator()
    real_log, ref_log = [], []
    for sim, log in ((real, real_log), (ref, ref_log)):
        events = [sim.schedule(t, _Callback(sim, log, 2 * i + 1))
                  for i, t in enumerate(times)]
        for event, dead in zip(events, doomed):
            if dead:
                sim.cancel(event)
        sim.run()
    assert real_log == ref_log
    assert real.now == ref.now


def test_reschedule_semantics_match_reference():
    """Delivered events re-arm in place; cancelled events revive as a
    fresh schedule of the same callback; queued events refuse."""
    for make in (Simulator, ReferenceSimulator):
        sim = make()
        log = []
        timer = sim.schedule(0.01, _Callback(sim, log, 3))
        try:
            sim.reschedule(timer, 0.5)
        except SimulationError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("queued event must refuse reschedule")
        sim.run()
        assert log == [(0.01, 3)]
        timer = sim.reschedule(timer, 0.02)  # delivered: re-arm
        sim.cancel(timer)
        revived = sim.reschedule(timer, 0.03)  # cancelled: revive
        sim.run()
        assert log == [(0.01, 3), (0.04, 3)]
        assert revived.delivered
