"""Property-based tests: expression evaluation vs a numpy oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expressions import (And, Between, Case, Col, Const, Floor,
                                  InList, Not, Or, eq, ge, gt, le, lt)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
arrays = st.lists(finite, min_size=1, max_size=40).map(
    lambda vs: np.array(vs, dtype=np.float64))


@given(arrays, arrays.map(lambda a: a[:1][0]))
@settings(max_examples=60)
def test_comparisons_match_numpy(values, threshold):
    env = {"x": values}
    np.testing.assert_array_equal(lt(Col("x"), threshold).evaluate(env),
                                  values < threshold)
    np.testing.assert_array_equal(ge(Col("x"), threshold).evaluate(env),
                                  values >= threshold)
    np.testing.assert_array_equal(eq(Col("x"), threshold).evaluate(env),
                                  values == threshold)


@given(arrays)
@settings(max_examples=60)
def test_demorgan(values):
    env = {"x": values}
    a = gt(Col("x"), 0)
    b = le(Col("x"), 100)
    lhs = Not(And(a, b)).evaluate(env)
    rhs = Or(Not(a), Not(b)).evaluate(env)
    np.testing.assert_array_equal(lhs, rhs)


@given(arrays, finite, finite)
@settings(max_examples=60)
def test_between_equals_two_comparisons(values, a, b):
    low, high = min(a, b), max(a, b)
    env = {"x": values}
    expected = (values >= low) & (values <= high)
    np.testing.assert_array_equal(
        Between(Col("x"), low, high).evaluate(env), expected)


@given(arrays)
@settings(max_examples=60)
def test_case_partitions(values):
    """CASE selects exactly one branch per row."""
    env = {"x": values}
    cond = gt(Col("x"), 0)
    result = Case(cond, Const(1.0), Const(-1.0)).evaluate(env)
    np.testing.assert_array_equal(result > 0, values > 0)


@given(arrays)
@settings(max_examples=60)
def test_arithmetic_identities(values):
    env = {"x": values}
    np.testing.assert_allclose(
        (Col("x") + Const(0.0)).evaluate(env), values)
    np.testing.assert_allclose(
        (Col("x") * Const(1.0)).evaluate(env), values)
    np.testing.assert_allclose(
        (Col("x") - Col("x")).evaluate(env), np.zeros_like(values))


@given(arrays)
@settings(max_examples=60)
def test_floor_bounds(values):
    env = {"x": values}
    result = Floor(Col("x")).evaluate(env)
    assert (result <= values).all()
    # strict in exact arithmetic; == 1.0 can appear through float
    # rounding for tiny negative values
    assert (values - result <= 1.0).all()


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                max_size=30),
       st.sets(st.integers(min_value=0, max_value=9), min_size=1))
@settings(max_examples=60)
def test_inlist_matches_membership(values, members):
    arr = np.array(values, dtype=np.int64)
    env = {"x": arr}
    result = InList(Col("x"), sorted(members)).evaluate(env)
    expected = np.array([v in members for v in values])
    np.testing.assert_array_equal(result, expected)
