"""Property tests: the core-lease ledger under random edit sequences.

Hypothesis drives a :class:`~repro.opsys.CoreInventory` shared by three
tenants through random seed/acquire/release sequences and asserts the
invariants the docstring promises:

* leases are pairwise **disjoint** — one owner per core, ever;
* the union of tenant masks stays **within the online cores**;
* :meth:`release` succeeds only for a **core the tenant holds**, and
  afterwards the core is free;
* no edit ever drops a governed tenant below its **min_cores** floor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LeaseError
from repro.opsys.cpuset import CpuSet
from repro.opsys.inventory import CoreInventory

N_CORES = 12
TENANTS = ("a", "b", "c")
MIN_CORES = {"a": 1, "b": 2, "c": 1}

#: one random lease edit: (tenant, operation, core)
edits = st.lists(
    st.tuples(st.sampled_from(TENANTS),
              st.sampled_from(("acquire", "release")),
              st.integers(min_value=0, max_value=N_CORES - 1)),
    max_size=80)

#: initial seeds: disjoint prefixes of the core range per tenant
seed_sizes = st.tuples(st.integers(min_value=1, max_value=3),
                       st.integers(min_value=2, max_value=3),
                       st.integers(min_value=1, max_value=3))


def build_inventory() -> CoreInventory:
    inventory = CoreInventory(N_CORES)
    for tenant in TENANTS:
        inventory.adopt(tenant, CpuSet(N_CORES),
                        min_cores=MIN_CORES[tenant])
    return inventory


def seed_all(inventory: CoreInventory, sizes) -> None:
    start = 0
    for tenant, size in zip(TENANTS, sizes):
        inventory.seed(tenant, range(start, start + size))
        start += size


def assert_invariants(inventory: CoreInventory) -> None:
    masks = {tenant: inventory.mask_of(tenant) for tenant in TENANTS}
    # pairwise disjoint
    for one in TENANTS:
        for other in TENANTS:
            if one != other:
                assert not masks[one] & masks[other]
    # union within the online cores
    union = frozenset().union(*masks.values())
    assert union <= frozenset(range(N_CORES))
    # min_cores floor of every governed tenant
    for tenant in TENANTS:
        if inventory.is_governed(tenant):
            assert len(masks[tenant]) >= MIN_CORES[tenant]
    # the ledger's own self-check agrees
    inventory.check()


@given(sizes=seed_sizes, sequence=edits)
@settings(max_examples=120, deadline=None)
def test_lease_invariants_under_random_edits(sizes, sequence):
    inventory = build_inventory()
    seed_all(inventory, sizes)
    assert_invariants(inventory)
    for tenant, operation, core in sequence:
        held_before = inventory.mask_of(tenant)
        owner_before = inventory.owner_of(core)
        if operation == "acquire":
            try:
                lease = inventory.acquire(tenant, core)
            except LeaseError:
                # only a held core is refused
                assert owner_before is not None
            else:
                assert owner_before is None
                assert lease.tenant == tenant and lease.core == core
                assert core in inventory.mask_of(tenant)
        else:
            try:
                inventory.release(tenant, core)
            except LeaseError:
                # refused iff not held, or at the floor
                assert (core not in held_before
                        or len(held_before) <= MIN_CORES[tenant])
            else:
                # release only returns a core the tenant held
                assert core in held_before
                assert inventory.owner_of(core) is None
        assert_invariants(inventory)


@given(sizes=seed_sizes)
@settings(max_examples=40, deadline=None)
def test_seed_is_atomic_and_exact(sizes):
    inventory = build_inventory()
    seed_all(inventory, sizes)
    start = 0
    for tenant, size in zip(TENANTS, sizes):
        wanted = frozenset(range(start, start + size))
        assert inventory.mask_of(tenant) == wanted
        assert inventory.cpuset_of(tenant).allowed() == wanted
        assert inventory.is_governed(tenant)
        start += size
    assert inventory.free_cores() == frozenset(range(start, N_CORES))


@given(sizes=seed_sizes, core=st.integers(0, N_CORES - 1))
@settings(max_examples=60, deadline=None)
def test_foreign_cores_are_never_acquirable(sizes, core):
    inventory = build_inventory()
    seed_all(inventory, sizes)
    owner = inventory.owner_of(core)
    for tenant in TENANTS:
        if owner is not None and owner != tenant:
            assert core in inventory.unavailable_to(tenant)
            try:
                inventory.acquire(tenant, core)
            except LeaseError:
                pass
            else:
                raise AssertionError("foreign core was acquirable")


def test_reseed_replaces_the_lease_set():
    inventory = build_inventory()
    inventory.seed("a", [0, 1, 2])
    inventory.seed("a", [5, 6])
    assert inventory.mask_of("a") == {5, 6}
    assert inventory.free_cores() >= {0, 1, 2}


def test_seed_refuses_foreign_and_sub_floor_sets():
    inventory = build_inventory()
    inventory.seed("a", [0, 1])
    try:
        inventory.seed("b", [1, 2])
    except LeaseError:
        pass
    else:
        raise AssertionError("seed over a foreign lease succeeded")
    try:
        inventory.seed("b", [2])  # b's floor is 2
    except LeaseError:
        pass
    else:
        raise AssertionError("sub-floor seed succeeded")
