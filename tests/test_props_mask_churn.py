"""Fuzz: random cpuset churn mid-run never loses work or deadlocks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.prebuilt import ring_topology, small_numa
from repro.hardware.machine import Machine
from repro.opsys.system import OperatingSystem
from repro.opsys.thread import ThreadState
from repro.opsys.workitem import ListWorkSource, WorkItem

mask_events = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=0.2, allow_nan=False),
        st.sets(st.integers(min_value=0, max_value=3), min_size=1)),
    min_size=1, max_size=8)


@given(mask_events, st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_work_survives_arbitrary_mask_churn(events, n_threads):
    os_ = OperatingSystem(small_numa())
    threads = []
    for _ in range(n_threads):
        pages = list(os_.machine.memory.allocate(24))
        threads.append(os_.spawn_thread(ListWorkSource(
            [WorkItem("w", reads=pages, cycles=2e7)])))
    for at, mask in events:
        os_.sim.schedule(at, lambda m=mask: os_.cpuset.set_mask(m))
    os_.run_until_idle()
    assert all(t.state is ThreadState.DONE for t in threads)
    assert os_.scheduler.live_threads() == 0


@given(mask_events)
@settings(max_examples=20, deadline=None)
def test_mask_churn_with_pinned_and_unmanaged(events):
    os_ = OperatingSystem(small_numa())
    pages = list(os_.machine.memory.allocate(16))
    kinds = [
        dict(pinned_core=0),
        dict(pinned_node=1),
        dict(managed=False),
        dict(),
    ]
    threads = [os_.spawn_thread(
        ListWorkSource([WorkItem("w", reads=pages, cycles=1e7)]),
        **kind) for kind in kinds]
    for at, mask in events:
        os_.sim.schedule(at, lambda m=mask: os_.cpuset.set_mask(m))
    os_.run_until_idle()
    assert all(t.state is ThreadState.DONE for t in threads)


def test_ring_topology_distances():
    config = small_numa(n_sockets=6, cores_per_socket=1)
    topo = ring_topology(config)
    assert topo.distance(0, 1) == 1
    assert topo.distance(0, 3) == 3
    assert topo.distance(0, 5) == 1  # shorter arc
    assert topo.distance(2, 2) == 0


def test_ring_topology_multi_hop_costs_more():
    config = small_numa(n_sockets=6, cores_per_socket=1)
    machine = Machine(topology=ring_topology(config))
    near = list(machine.memory.allocate(8))
    far = list(machine.memory.allocate(8))
    for page in near:
        machine.memory.place(page, 1)   # one hop from node 0
    for page in far:
        machine.memory.place(page, 3)   # three hops from node 0
    near_cost = machine.touch(0.0, 0, near).stall_time
    machine.flush_caches()
    far_cost = machine.touch(10.0, 0, far).stall_time
    assert far_cost > near_cost
