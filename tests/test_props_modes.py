"""Property-based tests: allocation-mode invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.core.modes import (AdaptivePriorityMode, DenseMode, SparseMode,
                              make_mode)
from repro.core.priority import NodePriorityQueue
from repro.hardware.topology import Topology

shapes = st.tuples(st.integers(min_value=1, max_value=6),
                   st.integers(min_value=1, max_value=6))


def topo_for(shape):
    sockets, cores = shape
    return Topology(MachineConfig(n_sockets=sockets,
                                  cores_per_socket=cores))


@given(shapes, st.sampled_from(["sparse", "dense"]))
@settings(max_examples=50)
def test_static_order_is_a_permutation(shape, mode_name):
    topo = topo_for(shape)
    order = make_mode(mode_name, topo).allocation_order()
    assert sorted(order) == list(topo.all_cores())


@given(shapes, st.sampled_from(["sparse", "dense"]),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=60)
def test_full_walk_allocates_every_core_once(shape, mode_name, seed):
    topo = topo_for(shape)
    mode = make_mode(mode_name, topo)
    allocated: set[int] = set()
    for _ in range(topo.n_cores):
        core = mode.next_allocation(frozenset(allocated))
        assert core not in allocated
        allocated.add(core)
    assert allocated == set(topo.all_cores())


@given(shapes, st.data())
@settings(max_examples=50)
def test_adaptive_allocation_respects_priorities(shape, data):
    topo = topo_for(shape)
    counts = data.draw(st.lists(
        st.integers(min_value=0, max_value=1000),
        min_size=topo.n_sockets, max_size=topo.n_sockets))
    queue = NodePriorityQueue(topo.n_sockets)
    queue.update([], fallback=counts)
    mode = AdaptivePriorityMode(topo, queue)
    core = mode.next_allocation(frozenset())
    assert topo.node_of_core(core) == queue.hottest()
    release_from = mode.next_release(frozenset(topo.all_cores()))
    assert topo.node_of_core(release_from) == queue.coldest()


@given(shapes, st.data())
@settings(max_examples=50)
def test_release_only_names_allocated_cores(shape, data):
    topo = topo_for(shape)
    mode = DenseMode(topo)
    subset = data.draw(st.sets(
        st.sampled_from(list(topo.all_cores())), min_size=1))
    released = mode.next_release(frozenset(subset))
    assert released in subset


@given(shapes, st.data())
@settings(max_examples=50)
def test_allocation_never_names_allocated_cores(shape, data):
    topo = topo_for(shape)
    mode = SparseMode(topo)
    universe = list(topo.all_cores())
    subset = data.draw(st.sets(st.sampled_from(universe),
                               max_size=len(universe) - 1))
    core = mode.next_allocation(frozenset(subset))
    assert core not in subset


@given(shapes, st.integers(min_value=1, max_value=10))
@settings(max_examples=50)
def test_initial_mask_size_and_uniqueness(shape, k):
    topo = topo_for(shape)
    k = min(k, topo.n_cores)
    mask = DenseMode(topo).initial_mask(k)
    assert len(mask) == k
    assert len(set(mask)) == k
