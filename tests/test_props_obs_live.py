"""Property-based tests: live-aggregator invariants under random input."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live import Ewma, P2Quantile, Series, WindowRate

values = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
quantiles = st.floats(min_value=0.05, max_value=0.95)


@given(st.lists(values, min_size=1, max_size=200),
       st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=60)
def test_ewma_stays_within_observed_range(observations, alpha):
    ewma = Ewma(alpha=alpha)
    for value in observations:
        ewma.update(value)
        # a convex combination can never escape the observed range
        assert min(observations) - 1e-6 <= ewma.value \
            <= max(observations) + 1e-6
    assert ewma.count == len(observations)


@given(st.lists(values, min_size=1, max_size=200), quantiles)
@settings(max_examples=60)
def test_p2_estimate_bounded_by_observed_extremes(observations, q):
    sketch = P2Quantile(q)
    for value in observations:
        sketch.observe(value)
    estimate = sketch.value()
    assert estimate is not None
    assert min(observations) - 1e-9 <= estimate \
        <= max(observations) + 1e-9


@given(st.lists(values, min_size=1, max_size=5), quantiles)
@settings(max_examples=60)
def test_p2_exact_below_five_observations(observations, q):
    sketch = P2Quantile(q)
    for value in observations:
        sketch.observe(value)
    ordered = sorted(observations)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    assert sketch.value() == ordered[rank]


@given(st.lists(st.integers(min_value=1000, max_value=100_000),
                min_size=50, max_size=400), quantiles)
@settings(max_examples=30)
def test_p2_tracks_the_sorted_reference(samples, q):
    """On longer streams the sketch lands near the true quantile.

    P² has no hard error guarantee, so the property is deliberately
    loose: the estimate falls between the 'neighbouring' order
    statistics a quarter of the stream away on either side.
    """
    sketch = P2Quantile(q)
    for value in samples:
        sketch.observe(float(value))
    ordered = sorted(samples)
    n = len(ordered)
    lo = ordered[max(0, math.floor((q - 0.25) * n))]
    hi = ordered[min(n - 1, math.ceil((q + 0.25) * n))]
    assert lo <= sketch.value() <= hi


@given(st.lists(positive, min_size=2, max_size=100))
@settings(max_examples=60)
def test_window_rate_nonnegative_for_monotone_counters(increments):
    rate = WindowRate()
    total = 0.0
    for i, increment in enumerate(increments):
        total += increment
        observed = rate.update(float(i + 1), total)
        if i == 0:
            assert observed is None  # no window exists yet
        else:
            assert observed is not None and observed >= 0.0


@given(st.lists(positive, min_size=2, max_size=100))
@settings(max_examples=60)
def test_window_rate_integrates_back_to_the_total(increments):
    """Sum of rate x window over all windows == the counter's growth."""
    rate = WindowRate()
    total = 0.0
    recovered = 0.0
    for i, increment in enumerate(increments):
        total += increment
        observed = rate.update(float(i + 1), total)
        if observed is not None:
            recovered += observed * 1.0  # dt is always 1.0 here
    assert recovered == pytest.approx(total - increments[0],
                                      rel=1e-6, abs=1e-6)


@given(st.lists(st.tuples(positive, values), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=60)
def test_series_ring_is_bounded_and_summary_consistent(samples, keep):
    series = Series("s", keep=keep)
    t = 0.0
    for dt, value in samples:
        t += dt + 1e-3
        series.add(t, value)
    assert len(series.samples) <= keep
    assert series.count == len(samples)
    assert series.last == samples[-1][1]
    assert series.last_time == t
