"""Property-based tests: PrT model invariants under arbitrary load traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PerformanceModel

metrics = st.floats(min_value=0.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False)


@given(st.lists(metrics, min_size=1, max_size=60))
@settings(max_examples=60)
def test_nalloc_always_within_bounds(trace):
    model = PerformanceModel(10, 70, n_total=16, initial_cores=1)
    for u in trace:
        model.run_cycle(u)
        assert 1 <= model.nalloc <= 16


@given(st.lists(metrics, min_size=1, max_size=60))
@settings(max_examples=60)
def test_token_count_conserved(trace):
    model = PerformanceModel(10, 70, n_total=16, initial_cores=4)
    for u in trace:
        model.run_cycle(u)
        # exactly one u-token (in Checks) and one na-token (in Provision)
        assert model.net.total_tokens() == 2
        assert len(model.net.place("Checks")) == 1
        assert len(model.net.place("Provision")) == 1


@given(st.lists(metrics, min_size=1, max_size=60))
@settings(max_examples=60)
def test_every_cycle_fires_exactly_one_chain(trace):
    model = PerformanceModel(10, 70, n_total=8, initial_cores=2)
    for i, u in enumerate(trace):
        chain = model.run_cycle(u)
        assert chain.entry in ("t0", "t1", "t2")
        assert chain.exit in ("t3", "t4", "t5", "t6", "t7")
    assert len(model.net.fired_log) == 2 * len(trace)


@given(st.lists(metrics, min_size=1, max_size=60))
@settings(max_examples=60)
def test_nalloc_changes_by_at_most_one_per_cycle(trace):
    model = PerformanceModel(10, 70, n_total=16, initial_cores=8)
    previous = model.nalloc
    for u in trace:
        model.run_cycle(u)
        assert abs(model.nalloc - previous) <= 1
        previous = model.nalloc


@given(metrics, st.integers(min_value=1, max_value=16))
@settings(max_examples=60)
def test_state_classification_matches_chain(u, cores):
    model = PerformanceModel(10, 70, n_total=16, initial_cores=cores)
    chain = model.run_cycle(u)
    assert chain.state == model.state_of(u)


@given(st.lists(metrics, min_size=1, max_size=40),
       st.integers(min_value=2, max_value=4))
@settings(max_examples=40)
def test_min_cores_respected(trace, n_min):
    model = PerformanceModel(10, 70, n_total=16, n_min=n_min,
                             initial_cores=n_min)
    for u in trace:
        model.run_cycle(u)
        assert model.nalloc >= n_min
