"""Property suite for the queue-based persistent pool.

Hypothesis drives :func:`repro.runner.pool._run_pool` through a
thread-backed transport (same code path as the spawn pool — private
task queues, shared result queue, reap/respawn — without paying a
process spawn per example):

* results always land in submission order, whatever the durations;
* a worker crash (a ``SystemExit`` escaping the worker loop, exactly
  like a hard process death) fails only the task it was running;
* shared-memory segments are always unlinked on exit, including on
  exception paths.

``conftest.py`` verifies at session end that ``/dev/shm`` carries no
``repro_`` segments, so every test here doubles as a leak check.
"""

from __future__ import annotations

import os
import queue
import threading
import time

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runner.pool as pool_mod
from repro.runner.pool import PoolStats, Task, _run_pool

_SPEC = "tests.test_props_pool:_work"


def _work(index: int, duration: float = 0.0, action: str = "ok"):
    """Worker target: sleep, then succeed, raise, or die hard."""
    if duration:
        time.sleep(duration)
    if action == "raise":
        raise ValueError(f"boom {index}")
    if action == "crash":
        # SystemExit escapes the worker loop's `except Exception`,
        # killing the worker mid-task — the thread analogue of a
        # process segfault / os._exit
        raise SystemExit(1)
    return index


class _ThreadProcess:
    """`multiprocessing.Process`-shaped wrapper over a daemon thread."""

    def __init__(self, target=None, args=(), daemon=True):
        self._target = target
        self._args = args
        self.exitcode: int | None = None
        self._thread = threading.Thread(target=self._run, daemon=daemon)

    def _run(self) -> None:
        try:
            self._target(*self._args)
        except BaseException:
            self.exitcode = 1
        else:
            self.exitcode = 0

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def terminate(self) -> None:  # pragma: no cover - teardown only
        pass


class _ThreadContext:
    """Injectable pool transport backed by threads + queue.Queue."""

    Process = _ThreadProcess

    def Queue(self):
        return queue.Queue()


def _leaked_segments() -> list[str]:
    try:
        return [name for name in os.listdir("/dev/shm")
                if name.startswith("repro_")]
    except FileNotFoundError:
        return []


_actions = st.sampled_from(["ok", "ok", "ok", "raise", "crash"])
_durations = st.floats(min_value=0.0, max_value=0.005)
_plans = st.lists(st.tuples(_actions, _durations), min_size=1,
                  max_size=10)


@settings(max_examples=30, deadline=None)
@given(plan=_plans, workers=st.integers(min_value=1, max_value=4))
def test_outcomes_land_in_submission_slots(plan, workers):
    tasks = [Task(_SPEC, dict(index=i, duration=d, action=a))
             for i, (a, d) in enumerate(plan)]
    stats = PoolStats()
    outcomes = _run_pool(tasks, min(workers, len(tasks)),
                         _ThreadContext(), stats=stats,
                         fail_fast=False)
    assert len(outcomes) == len(tasks)
    for i, (action, _) in enumerate(plan):
        outcome = outcomes[i]
        assert outcome is not None  # fail_fast off: every task runs
        if action == "ok":
            # the value came back in its submission slot
            assert outcome.failure is None and outcome.value == i
        else:
            assert outcome.failure is not None
    # every completed task is accounted once
    ok_count = sum(1 for o in outcomes
                   if o is not None and o.failure is None)
    assert ok_count == sum(1 for a, _ in plan if a == "ok")
    assert _leaked_segments() == []


@settings(max_examples=20, deadline=None)
@given(plan=_plans, workers=st.integers(min_value=1, max_value=4),
       crash_at=st.integers(min_value=0, max_value=9))
def test_one_crash_fails_only_its_task(plan, workers, crash_at):
    plan = [("ok", d) for _, d in plan]
    crash_at = crash_at % len(plan)
    plan[crash_at] = ("crash", plan[crash_at][1])
    tasks = [Task(_SPEC, dict(index=i, duration=d, action=a))
             for i, (a, d) in enumerate(plan)]
    stats = PoolStats()
    outcomes = _run_pool(tasks, min(workers, len(tasks)),
                         _ThreadContext(), stats=stats,
                         fail_fast=False)
    for i, outcome in enumerate(outcomes):
        assert outcome is not None
        if i == crash_at:
            assert outcome.failure is not None
            assert "died" in outcome.failure["message"]
            assert outcome.failure["fn"] == _SPEC
        else:
            assert outcome.failure is None and outcome.value == i
    if len(plan) > 1:
        # the pool replaced the dead worker while work remained, or
        # finished on the survivors; either way it never wedged
        assert stats.tasks == len(plan) - 1
    assert _leaked_segments() == []


@settings(max_examples=15, deadline=None)
@given(fail_fast=st.booleans(),
       workers=st.integers(min_value=1, max_value=3),
       n_tasks=st.integers(min_value=1, max_value=6))
def test_segments_unlink_even_when_tasks_fail(fail_fast, workers,
                                              n_tasks):
    # a big array forces real segments; the failing task exercises the
    # abort/teardown path with segments live
    arr = np.arange(40_000, dtype=np.float64)
    tasks = [Task(_SPEC, dict(index=i, action="raise", payload=arr))
             for i in range(n_tasks)]
    _run_pool(tasks, min(workers, n_tasks), _ThreadContext(),
              fail_fast=fail_fast)
    assert _leaked_segments() == []


def test_dispatch_respects_cost_hints_longest_first():
    # deterministic unit for the straggler policy: with hints, the
    # longest-expected task reaches a worker first even when submitted
    # last — observable through a single-worker execution order
    seen = []
    original = pool_mod._dispatch_order
    durations = [0.001, 0.002, 0.005]
    tasks = [Task(_SPEC, dict(index=i, duration=d))
             for i, d in enumerate(durations)]
    keys = [pool_mod.task_cost_key(t.fn, t.kwargs) for t in tasks]
    hints = {k: d for k, d in zip(keys, durations)}

    def spy(keys_arg, hints_arg):
        order = original(keys_arg, hints_arg)
        seen.append(order)
        return order

    pool_mod._dispatch_order = spy
    try:
        outcomes = _run_pool(tasks, 1, _ThreadContext(),
                             cost_hints=hints)
    finally:
        pool_mod._dispatch_order = original
    assert seen == [[2, 1, 0]]  # longest expected first
    assert [o.value for o in outcomes] == [0, 1, 2]  # merged by slot
