"""Property tests: the fast-path event loop matches the seed loop.

The dispatch loop in :mod:`repro.sim.engine` was rewritten for speed
(fused peek/pop, O(1) live-event counter, timer re-arming via
``reschedule``).  Everything downstream assumes the rewrite changed *no*
observable behaviour — delivery order, tie-breaking, lazy-cancel
semantics, the ``until`` bound.  These tests pin that equivalence by
replaying random schedules (with cancellations and periodic timers)
against ``ReferenceSimulator``, a verbatim copy of the seed
implementation's semantics, and comparing the full delivery logs.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class _RefEvent:
    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class ReferenceSimulator:
    """The seed engine: peek-then-step loop, O(n) pending, no re-arm."""

    def __init__(self):
        self._heap = []
        self._now = 0.0
        self._seq = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        self._seq += 1
        event = _RefEvent(self._now + delay, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event):
        event.cancelled = True

    def pending(self):
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn(*event.args)
            return True
        return False

    def run(self, until=None, max_events=None):
        delivered = 0
        while True:
            if max_events is not None and delivered >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if self.step():
                delivered += 1
        return delivered


# ---------------------------------------------------------------------
# strategies: a schedule program is a list of (delay, cancel_target)
# entries; delays repeat deliberately so tie-breaking is exercised

_delays = st.integers(min_value=0, max_value=5).map(lambda d: d * 0.25)

_programs = st.lists(
    st.tuples(_delays, st.integers(min_value=-4, max_value=20)),
    min_size=1, max_size=30)


def _replay(sim, program, log):
    """Apply one schedule program to ``sim``, logging deliveries."""
    events = []
    for i, (delay, cancel_target) in enumerate(program):
        events.append(
            sim.schedule(delay, lambda i=i: log.append((i, sim.now))))
        if 0 <= cancel_target < len(events):
            sim.cancel(events[cancel_target])
    return events


@settings(max_examples=200, deadline=None)
@given(program=_programs,
       until=st.one_of(st.none(), _delays),
       max_events=st.one_of(st.none(),
                            st.integers(min_value=0, max_value=12)))
def test_delivery_matches_reference(program, until, max_events):
    ref, ref_log = ReferenceSimulator(), []
    fast, fast_log = Simulator(), []
    _replay(ref, program, ref_log)
    _replay(fast, program, fast_log)
    assert fast.pending() == ref.pending()
    ref_delivered = ref.run(until=until, max_events=max_events)
    fast_delivered = fast.run(until=until, max_events=max_events)
    assert fast_delivered == ref_delivered
    assert fast_log == ref_log
    assert fast.now == ref.now
    assert fast.pending() == ref.pending()


@settings(max_examples=200, deadline=None)
@given(program=_programs)
def test_interleaved_stepping_matches_reference(program):
    """step()/pending() agree after every single delivery."""
    ref, ref_log = ReferenceSimulator(), []
    fast, fast_log = Simulator(), []
    _replay(ref, program, ref_log)
    _replay(fast, program, fast_log)
    while True:
        ref_more = ref.step()
        fast_more = fast.step()
        assert fast_more == ref_more
        assert fast_log == ref_log
        assert fast.pending() == ref.pending()
        assert fast.now == ref.now
        if not ref_more:
            break


@settings(max_examples=100, deadline=None)
@given(period=st.integers(min_value=1, max_value=4).map(
           lambda p: p * 0.125),
       ticks=st.integers(min_value=1, max_value=10),
       program=_programs)
def test_rearmed_timer_matches_fresh_schedules(period, ticks, program):
    """reschedule() delivers exactly like cancel-and-schedule-anew.

    The reference ticker allocates a fresh event per tick (the seed
    pattern); the fast ticker re-arms one event cell.  With a random
    one-shot program interleaved, the merged delivery logs must match.
    """
    ref, ref_log = ReferenceSimulator(), []
    fast, fast_log = Simulator(), []

    def ref_tick(remaining):
        ref_log.append(("tick", ref.now))
        if remaining > 1:
            ref.schedule(period, ref_tick, remaining - 1)

    state = {}

    def fast_tick():
        fast_log.append(("tick", fast.now))
        state["left"] -= 1
        if state["left"] > 0:
            fast.reschedule(state["event"], period)

    ref.schedule(period, ref_tick, ticks)
    state["left"] = ticks
    state["event"] = fast.schedule(period, fast_tick)

    _replay(ref, [(d, -1) for d, _ in program],
            ref_log)
    _replay(fast, [(d, -1) for d, _ in program],
            fast_log)

    ref.run()
    fast.run()
    assert fast_log == ref_log
    assert fast.pending() == ref.pending() == 0
