"""Property tests: a forked run is bit-identical to an uninterrupted one.

The warm-start harness forks sweeps from a mid-simulation capture, so the
whole experiment layer assumes ``snapshot() -> restore() -> run()``
changes *nothing* observable versus simply letting the original run
continue.  These tests pin that over random programs of schedules,
cancellations and re-armed periodic timers (the three scheduling
primitives the system uses), with an RNG in the captured graph, cutting
the run at a random point: the fork's delivery log, clock and final heap
state must equal the cold run's.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class _Log:
    """Picklable one-shot callback: record (tag, now, rng draw)."""

    __slots__ = ("harness", "tag")

    def __init__(self, harness, tag):
        self.harness = harness
        self.tag = tag

    def __call__(self):
        h = self.harness
        h.log.append((self.tag, h.sim.now, h.rng.random()))


class _Ticker:
    """Picklable periodic callback driven by ``reschedule``."""

    __slots__ = ("harness", "period", "remaining", "event")

    def __init__(self, harness, period, remaining):
        self.harness = harness
        self.period = period
        self.remaining = remaining
        self.event = None

    def __call__(self):
        h = self.harness
        h.log.append(("tick", h.sim.now, h.rng.random()))
        self.remaining -= 1
        if self.remaining > 0:
            self.event = h.sim.reschedule(self.event, self.period)


class _Harness:
    """Simulator + delivery log + RNG, built from one program."""

    def __init__(self, program, ticks, period):
        self.sim = Simulator()
        self.log = []
        self.rng = random.Random(1234)
        if ticks:
            ticker = _Ticker(self, period, ticks)
            ticker.event = self.sim.schedule(period, ticker)
        events = []
        for i, (delay, cancel_target) in enumerate(program):
            events.append(self.sim.schedule(delay, _Log(self, i)))
            if 0 <= cancel_target < len(events):
                self.sim.cancel(events[cancel_target])


# delays repeat deliberately so ties (and therefore seq ordering inside
# the restored heap) are exercised
_delays = st.integers(min_value=0, max_value=5).map(lambda d: d * 0.25)

_programs = st.lists(
    st.tuples(_delays, st.integers(min_value=-4, max_value=20)),
    min_size=1, max_size=25)


@settings(max_examples=150, deadline=None)
@given(program=_programs,
       ticks=st.integers(min_value=0, max_value=6),
       period=st.integers(min_value=1, max_value=4).map(
           lambda p: p * 0.125),
       split=st.integers(min_value=0, max_value=30))
def test_forked_run_matches_uninterrupted(program, ticks, period, split):
    cold = _Harness(program, ticks, period)
    cold.sim.run()

    warm = _Harness(program, ticks, period)
    warm.sim.run(max_events=split)
    state = warm.sim.snapshot(root=warm)
    fork = Simulator.restore(state)
    fork.sim.run()

    assert fork.log == cold.log
    assert fork.sim.now == cold.sim.now
    assert fork.sim.pending() == cold.sim.pending() == 0

    # restoring is repeatable: a second fork of the same capture replays
    # the identical suffix, untouched by the first fork's run
    again = Simulator.restore(state)
    again.sim.run()
    assert again.log == cold.log


@settings(max_examples=100, deadline=None)
@given(program=_programs,
       split=st.integers(min_value=0, max_value=30),
       extra=_programs)
def test_divergent_suffixes_match_cell_by_cell(program, split, extra):
    """The sweep pattern: one warm prefix, N different suffixes.

    Each suffix scheduled on a fresh fork must behave exactly as if it
    had been scheduled on a cold run that was driven to the same split
    point — the fork boundary is invisible to the suffix.
    """
    def _suffix(harness):
        events = []
        for i, (delay, cancel_target) in enumerate(extra):
            events.append(
                harness.sim.schedule(delay, _Log(harness, 1000 + i)))
            if 0 <= cancel_target < len(events):
                harness.sim.cancel(events[cancel_target])
        harness.sim.run()

    cold = _Harness(program, 0, 0.125)
    cold.sim.run(max_events=split)
    _suffix(cold)

    warm = _Harness(program, 0, 0.125)
    warm.sim.run(max_events=split)
    state = warm.sim.snapshot(root=warm)
    fork = Simulator.restore(state)
    _suffix(fork)

    assert fork.log == cold.log
    assert fork.sim.now == cold.sim.now
    assert fork.sim.pending() == cold.sim.pending() == 0
