"""Property-based tests: VM first-touch and scheduler conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.machine import Machine
from repro.hardware.prebuilt import small_numa
from repro.opsys.system import OperatingSystem
from repro.opsys.thread import ThreadState
from repro.opsys.vm import VirtualMemory
from repro.opsys.workitem import ListWorkSource, WorkItem


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=19),
                          st.integers(min_value=0, max_value=1)),
                min_size=1, max_size=100))
@settings(max_examples=50)
def test_first_touch_home_is_first_toucher(touches):
    vm = VirtualMemory(Machine(small_numa()))
    pages = list(vm.machine.memory.allocate(20))
    first_toucher: dict[int, int] = {}
    for page_idx, node in touches:
        page = pages[page_idx]
        vm.touch_pages([page], node)
        first_toucher.setdefault(page, node)
    for page, node in first_toucher.items():
        assert vm.machine.memory.home(page) == node


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=19),
                          st.integers(min_value=0, max_value=1)),
                min_size=1, max_size=100))
@settings(max_examples=50)
def test_minor_faults_bounded_by_pages_times_nodes(touches):
    vm = VirtualMemory(Machine(small_numa()))
    pages = list(vm.machine.memory.allocate(20))
    for page_idx, node in touches:
        vm.touch_pages([pages[page_idx]], node)
    distinct = {(p, n) for p, n in touches}
    assert vm.total_minor_faults() == len(distinct)


@given(st.lists(st.tuples(
    st.integers(min_value=1, max_value=24),     # pages per item
    st.floats(min_value=1e5, max_value=5e7)),   # cycles per item
    min_size=1, max_size=12),
    st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_scheduler_completes_all_work(items_spec, seed):
    """No work is lost or duplicated, whatever the shape of the load."""
    os_ = OperatingSystem(small_numa())
    completed = []
    threads = []
    for idx, (n_pages, cycles) in enumerate(items_spec):
        pages = list(os_.machine.memory.allocate(n_pages))
        item = WorkItem(f"item{idx}", reads=pages, cycles=cycles,
                        on_complete=lambda it: completed.append(it.label))
        threads.append(os_.spawn_thread(ListWorkSource([item])))
    os_.run_until_idle()
    assert sorted(completed) == sorted(
        f"item{i}" for i in range(len(items_spec)))
    assert all(t.state is ThreadState.DONE for t in threads)
    assert os_.scheduler.live_threads() == 0


@given(st.integers(min_value=1, max_value=10),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_busy_time_bounded_by_cores_times_makespan(n_threads, n_cores):
    os_ = OperatingSystem(small_numa())
    os_.cpuset.set_mask(list(range(n_cores)))
    for _ in range(n_threads):
        pages = list(os_.machine.memory.allocate(16))
        os_.spawn_thread(ListWorkSource(
            [WorkItem("w", reads=pages, cycles=1e7)]))
    os_.run_until_idle()
    busy = os_.counters.total("busy_time")
    assert busy <= n_cores * os_.now * (1 + 1e-6)
    assert os_.counters.total("useful_time") <= busy + 1e-9
