"""Public API surface and error hierarchy."""

import pytest

import repro
from repro import errors


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_error_hierarchy_roots_at_repro_error():
    subclasses = [
        errors.ConfigError, errors.SimulationError,
        errors.SchedulerError, errors.HardwareError,
        errors.DatabaseError, errors.PlanError, errors.WorkloadError,
        errors.PetriNetError, errors.AllocationError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.PlanError, errors.DatabaseError)


def test_errors_catchable_via_base():
    with pytest.raises(errors.ReproError):
        raise errors.AllocationError("x")


def test_quickstart_snippet_from_the_readme():
    """The README's quickstart code runs as written."""
    from repro import build_system, repeat_stream

    sut = build_system(engine="monetdb", mode="adaptive", scale=0.004,
                       sim_scale=0.125)
    result = sut.run_clients(4, repeat_stream("q6", 2))
    assert result.throughput > 0
    assert sut.label == "monetdb/adaptive"
    assert sut.controller.lonc.report().mean_cores >= 1


def test_validator_importable_from_top_level_module():
    from repro.validate import SystemValidator  # noqa: F401
