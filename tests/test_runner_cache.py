"""Unit tests for the content-addressed result cache.

The cache must be *sound* before it is fast: identical inputs map to one
key across processes and instances, and any change to the source tree,
the task spec or the canonicalised parameters must change the key.  The
pool integration is covered through ``run_tasks`` with a side-effect
counter — a hit must mean the task did not execute.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runner.bench import run_bench
from repro.runner.cache import (ResultCache, canonical, configure,
                                current, resolve_cache, tree_fingerprint)
from repro.runner.pool import Task, run_tasks

#: bumped by _counted below; reset per test
_CALLS = {"n": 0}


def _counted(x):
    _CALLS["n"] += 1
    return x * 3


@pytest.fixture(autouse=True)
def _reset_calls():
    _CALLS["n"] = 0
    yield
    configure(None)


def _tree(tmp_path, text="x = 1\n"):
    root = tmp_path / "srctree"
    root.mkdir(exist_ok=True)
    (root / "mod.py").write_text(text)
    return root


# ---------------------------------------------------------------------
# keys


def test_key_is_stable_across_instances_and_kwarg_order(tmp_path):
    root = _tree(tmp_path)
    a = ResultCache(directory=tmp_path / "c", tree_root=root)
    b = ResultCache(directory=tmp_path / "c", tree_root=root)
    kwargs = dict(seed=7, users=(1, 4), scale=0.01)
    reordered = dict(scale=0.01, seed=7, users=[1, 4])
    assert a.task_key("m:f", kwargs) == b.task_key("m:f", reordered)


def test_key_changes_with_params_and_spec(tmp_path):
    cache = ResultCache(directory=tmp_path / "c",
                        tree_root=_tree(tmp_path))
    base = cache.task_key("m:f", dict(seed=7))
    assert cache.task_key("m:f", dict(seed=8)) != base
    assert cache.task_key("m:g", dict(seed=7)) != base
    assert cache.task_key("m:f", dict(seed=7, extra=None)) != base


def test_source_edit_invalidates_every_key(tmp_path):
    root = _tree(tmp_path, "x = 1\n")
    before = ResultCache(directory=tmp_path / "c", tree_root=root) \
        .task_key("m:f", dict(seed=7))
    _tree(tmp_path, "x = 2\n")
    after = ResultCache(directory=tmp_path / "c", tree_root=root) \
        .task_key("m:f", dict(seed=7))
    assert before != after


def test_default_tree_fingerprint_is_memoised_and_nonempty():
    assert tree_fingerprint() == tree_fingerprint()
    assert len(tree_fingerprint()) == 64


def test_canonical_digests_bulk_values():
    arr = np.arange(8, dtype=np.float64)
    assert canonical(arr) == canonical(arr.copy())
    assert canonical(arr) != canonical(arr + 1)
    assert canonical(b"abc") == canonical(bytearray(b"abc"))
    assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})
    assert canonical((1, 2)) == canonical([1, 2])


def test_canonical_uses_simstate_fingerprints():
    from repro.sim.engine import Simulator

    state = Simulator().snapshot()
    assert canonical(state) == {"fingerprint": state.fingerprint()}


# ---------------------------------------------------------------------
# storage


def test_lookup_store_roundtrip_and_stats(tmp_path):
    cache = ResultCache(directory=tmp_path / "c",
                        tree_root=_tree(tmp_path))
    key = cache.task_key("m:f", dict(seed=1))
    hit, _ = cache.lookup(key)
    assert not hit
    assert cache.store(key, {"rows": [1, 2, 3]})
    hit, value = cache.lookup(key)
    assert hit and value == {"rows": [1, 2, 3]}
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["stored"] == 1
    assert stats["entries"] == 1
    assert stats["bytes"] > 0


def test_corrupt_entries_read_as_misses(tmp_path):
    cache = ResultCache(directory=tmp_path / "c",
                        tree_root=_tree(tmp_path))
    key = cache.task_key("m:f", dict(seed=1))
    cache.store(key, "ok")
    cache._entry_path(key).write_bytes(b"\x80garbage")
    hit, _ = cache.lookup(key)
    assert not hit


def test_clear_removes_entries_and_counters(tmp_path):
    cache = ResultCache(directory=tmp_path / "c",
                        tree_root=_tree(tmp_path))
    for seed in range(3):
        cache.store(cache.task_key("m:f", dict(seed=seed)), seed)
    assert cache.clear() == 3
    stats = cache.stats()
    assert stats["entries"] == 0
    assert stats["stored"] == 0


# ---------------------------------------------------------------------
# pool integration


def test_run_tasks_replays_hits_without_executing(tmp_path):
    cache = ResultCache(directory=tmp_path / "c")
    tasks = [Task("tests.test_runner_cache:_counted", dict(x=i))
             for i in range(4)]
    first = run_tasks(tasks, cache=cache)
    assert first == [0, 3, 6, 9]
    assert _CALLS["n"] == 4
    second = run_tasks(tasks, cache=cache)
    assert second == first
    assert _CALLS["n"] == 4  # all four replayed
    # a new task mixes hits and misses, in submission order
    mixed = run_tasks(tasks + [Task("tests.test_runner_cache:_counted",
                                    dict(x=9))], cache=cache)
    assert mixed == [0, 3, 6, 9, 27]
    assert _CALLS["n"] == 5


def test_run_tasks_cache_false_disables(tmp_path):
    configure(ResultCache(directory=tmp_path / "c"))
    tasks = [Task("tests.test_runner_cache:_counted", dict(x=1))]
    run_tasks(tasks)  # cache=None -> configured cache
    run_tasks(tasks)
    assert _CALLS["n"] == 1
    run_tasks(tasks, cache=False)
    assert _CALLS["n"] == 2


def test_resolve_cache_and_current(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    configure(None)
    assert current() is None
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    store = ResultCache(directory=tmp_path / "c")
    assert resolve_cache(store) is store
    configure(store)
    assert current() is store
    assert resolve_cache(None) is store


def test_env_var_activates_cache(tmp_path, monkeypatch):
    configure(None)
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    import repro.runner.cache as cache_mod
    monkeypatch.setattr(cache_mod, "_ENV_CACHE", None)
    store = current()
    assert store is not None
    assert store.directory == tmp_path / "envcache"


# ---------------------------------------------------------------------
# bench integration


def test_run_bench_replays_cached_entries(tmp_path):
    cache = ResultCache(directory=tmp_path / "c")
    cold = run_bench(names=("fig7",), cache=cache)
    assert cold.cached == []
    assert cold.events["fig7"] > 0
    warm = run_bench(names=("fig7",), cache=cache)
    assert warm.cached == ["fig7"]
    # replayed timings and event counts are the original run's
    assert warm.experiments["fig7"][0] == cold.experiments["fig7"][0]
    assert warm.events["fig7"] == cold.events["fig7"]
    assert "(cached)" in warm.table()
    assert "events/s" in warm.table()
    # snapshots carry the events and cached fields through json
    from repro.runner.bench import _report_from_dict

    round_tripped = _report_from_dict(warm.as_dict())
    assert round_tripped.events == warm.events
    assert round_tripped.cached == ["fig7"]


def test_cached_experiment_results_pickle_identically(tmp_path):
    """A replayed cell is byte-identical to the run that stored it."""
    from repro.experiments import fig13_scheduling

    cache = ResultCache(directory=tmp_path / "c")
    configure(cache)
    try:
        kwargs = dict(users=(1,), repetitions=1)
        cold = fig13_scheduling.run(**kwargs)
        warm = fig13_scheduling.run(**kwargs)
    finally:
        configure(None)
    assert pickle.dumps(warm.cells) == pickle.dumps(cold.cells)
    assert cache.stats()["hits"] >= 1
