"""Unit tests for the parallel runner's pool and bench machinery.

These stay in-process (``parallel=1`` short-circuits the pool), so they
are cheap; the spawn path is covered by
``tests/test_parallel_experiments.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.runner.bench import (BENCH_SUITE, QUICK_SUITE, BenchReport,
                                _report_from_dict, load_baseline,
                                run_bench, write_report)
from repro.runner.pool import Task, resolve, run_tasks


# ---------------------------------------------------------------------
# pool


def _double(x):
    return 2 * x


def test_run_tasks_serial_preserves_submission_order():
    tasks = [Task("tests.test_runner_pool:_double", dict(x=i))
             for i in range(5)]
    assert run_tasks(tasks, parallel=1) == [0, 2, 4, 6, 8]


def test_run_tasks_rejects_nonpositive_parallel():
    with pytest.raises(ReproError):
        run_tasks([], parallel=0)


def test_resolve_rejects_malformed_specs():
    with pytest.raises(ReproError):
        resolve("no-colon")
    with pytest.raises(ReproError):
        resolve("definitely.not.a.module:fn")
    with pytest.raises(ReproError):
        resolve("math:no_such_attr")
    with pytest.raises(ReproError):
        resolve("math:pi")  # not callable


def test_bench_suite_specs_resolve():
    """Every suite entry points at an importable runner."""
    for name, (fn, kwargs) in BENCH_SUITE.items():
        runner = resolve(fn)
        assert callable(runner), name
        for key in kwargs:
            assert key in runner.__code__.co_varnames, (name, key)
    assert set(QUICK_SUITE) <= set(BENCH_SUITE)


# ---------------------------------------------------------------------
# bench report + baseline


def _report(rev, recorded_at, scores):
    report = BenchReport(rev=rev, recorded_at=recorded_at,
                         calibration_seconds=0.1)
    for name, score in scores.items():
        report.experiments[name] = (score * 0.1, score)
    return report


def test_compare_flags_regressions_beyond_tolerance():
    baseline = _report("aaa", 1.0, {"fig13": 10.0, "fig16": 4.0})
    current = _report("bbb", 2.0, {"fig13": 13.0, "fig16": 4.1})
    _, regressions = current.compare(baseline, tolerance=0.25)
    assert len(regressions) == 1
    assert "fig13" in regressions[0]
    _, regressions = current.compare(baseline, tolerance=0.5)
    assert regressions == []


def test_compare_headline_is_events_per_second_when_available():
    baseline = _report("aaa", 1.0, {"fig13": 10.0})
    baseline.events["fig13"] = 1000
    current = _report("bbb", 2.0, {"fig13": 10.0})
    current.events["fig13"] = 500  # throughput halved, scores equal
    table, regressions = current.compare(baseline, tolerance=0.25)
    assert "events/s" in table
    assert len(regressions) == 1
    assert "events/s" in regressions[0]

    current.events["fig13"] = 1000  # throughput restored
    _, regressions = current.compare(baseline, tolerance=0.25)
    assert regressions == []


def test_compare_falls_back_to_score_without_event_counts():
    # schema-1 baselines carry no event counts: fig13 compares by
    # events/s, fig16 (missing on the baseline side) by score
    baseline = _report("aaa", 1.0, {"fig13": 10.0, "fig16": 4.0})
    baseline.events["fig13"] = 1000
    current = _report("bbb", 2.0, {"fig13": 10.0, "fig16": 6.0})
    current.events["fig13"] = 1000
    current.events["fig16"] = 500
    table, regressions = current.compare(baseline, tolerance=0.25)
    assert len(regressions) == 1
    assert "fig16" in regressions[0] and "score" in regressions[0]


def test_compare_treats_new_experiments_as_informational():
    baseline = _report("aaa", 1.0, {"fig13": 10.0})
    current = _report("bbb", 2.0, {"fig13": 10.0, "fig16": 99.0})
    table, regressions = current.compare(baseline)
    assert regressions == []
    assert "new" in table


def test_write_and_load_baseline_roundtrip(tmp_path):
    old = _report("aaa", 1.0, {"fig13": 10.0})
    new = _report("bbb", 2.0, {"fig13": 11.0})
    write_report(old, tmp_path)
    path = write_report(new, tmp_path)
    assert path.name == "BENCH_bbb.json"
    data = json.loads(path.read_text())
    assert data["experiments"]["fig13"]["score"] == 11.0
    # latest by recorded_at wins...
    assert load_baseline(tmp_path).rev == "bbb"
    # ...unless excluded (the snapshot the run just wrote)
    assert load_baseline(tmp_path, exclude_rev="bbb").rev == "aaa"
    assert load_baseline(tmp_path / "missing") is None


def test_load_baseline_skips_corrupt_snapshots(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    (tmp_path / "BENCH_empty.json").write_text("{}")
    assert load_baseline(tmp_path) is None
    write_report(_report("ok", 3.0, {"fig13": 1.0}), tmp_path)
    assert load_baseline(tmp_path).rev == "ok"


def test_report_from_dict_tolerates_missing_fields():
    report = _report_from_dict({"experiments": {
        "fig13": {"seconds": 1.0, "score": 5.0}}})
    assert report.rev == "unknown"
    assert report.experiments["fig13"] == (1.0, 5.0)
    assert report.speedup is None


def test_run_bench_rejects_unknown_experiments():
    with pytest.raises(ReproError):
        run_bench(names=("not-an-experiment",))


def test_speedup_uses_serial_total_over_parallel_wall():
    report = _report("x", 1.0, {"a": 2.0, "b": 2.0})
    report.parallel = 4
    report.parallel_wall_seconds = 0.2
    assert report.speedup == pytest.approx(
        report.serial_total_seconds / 0.2)
    assert "speedup" in report.table()
