"""Unit tests for the parallel runner's pool and bench machinery.

These stay in-process (``parallel=1`` short-circuits the pool), so they
are cheap; the spawn path is covered by
``tests/test_parallel_experiments.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.runner.bench import (BENCH_SUITE, QUICK_SUITE, BenchReport,
                                _report_from_dict, load_baseline,
                                load_cost_hints, run_bench, write_report)
from repro.runner.pool import (PoolStats, Task, TaskError, _dispatch_order,
                               resolve, run_tasks, task_cost_key)


# ---------------------------------------------------------------------
# pool


def _double(x):
    return 2 * x


def test_run_tasks_serial_preserves_submission_order():
    tasks = [Task("tests.test_runner_pool:_double", dict(x=i))
             for i in range(5)]
    assert run_tasks(tasks, parallel=1) == [0, 2, 4, 6, 8]


def _fail(x):
    return x / 0


def test_serial_failures_wrap_as_task_error_with_context():
    tasks = [Task("tests.test_runner_pool:_fail", dict(x=3))]
    with pytest.raises(TaskError) as excinfo:
        run_tasks(tasks, parallel=1)
    err = excinfo.value
    assert err.fn == "tests.test_runner_pool:_fail"
    assert "x" in err.kwargs and "3" in err.kwargs  # canonical string
    assert "ZeroDivisionError" in str(err)
    assert "kwargs" in str(err)


def test_task_error_is_not_rewrapped():
    # a TaskError raised inside a task (e.g. a nested run) passes
    # through unchanged instead of nesting messages
    original = TaskError("inner", fn="a:b", kwargs={"k": 1})

    def raiser():
        raise original

    import tests.test_runner_pool as mod
    mod._raiser = raiser
    try:
        with pytest.raises(TaskError) as excinfo:
            run_tasks([Task("tests.test_runner_pool:_raiser", {})],
                      parallel=1)
    finally:
        del mod._raiser
    assert excinfo.value is original


def test_task_cost_key_is_stable_and_kwarg_sensitive():
    key = task_cost_key("m:f", dict(b=2, a=1))
    assert key == task_cost_key("m:f", dict(a=1, b=2))  # order-free
    assert key != task_cost_key("m:f", dict(a=1, b=3))
    assert key != task_cost_key("m:g", dict(a=1, b=2))
    assert len(key) == 16 and int(key, 16) >= 0  # short hex token


def test_dispatch_order_ranks_unknown_then_longest():
    keys = ["a", "b", "c", "d"]
    hints = {"a": 0.5, "c": 2.0}  # b and d unknown
    # unknown tasks first (in submission order), then longest-first
    assert _dispatch_order(keys, hints) == [1, 3, 2, 0]
    # no hints: pure submission order
    assert _dispatch_order(keys, {}) == [0, 1, 2, 3]
    # equal hints tie-break by submission index
    assert _dispatch_order(["a", "b"], {"a": 1.0, "b": 1.0}) == [0, 1]


def test_pool_stats_utilisation_and_dict_shape():
    stats = PoolStats(workers=2, wall_seconds=2.0, tasks=4,
                      ipc_task_bytes=100, ipc_result_bytes=50,
                      shm_bytes=4096)
    stats.busy_seconds = {0: 1.0, 1: 2.5}  # 2.5 > wall: clamped
    stats.worker_tasks = {0: 1, 1: 3}
    util = stats.worker_utilisation()
    assert util == {"0": pytest.approx(0.5), "1": pytest.approx(1.0)}
    assert stats.mean_utilisation() == pytest.approx(0.75)
    assert stats.ipc_bytes_shipped == 150
    data = stats.as_dict()
    assert data["ipc_bytes_shipped"] == 150
    assert data["worker_utilisation"] == util
    assert data["shm_bytes"] == 4096
    assert json.dumps(data)  # snapshot-serialisable


def test_run_tasks_rejects_nonpositive_parallel():
    with pytest.raises(ReproError):
        run_tasks([], parallel=0)


def test_resolve_rejects_malformed_specs():
    with pytest.raises(ReproError):
        resolve("no-colon")
    with pytest.raises(ReproError):
        resolve("definitely.not.a.module:fn")
    with pytest.raises(ReproError):
        resolve("math:no_such_attr")
    with pytest.raises(ReproError):
        resolve("math:pi")  # not callable


def test_bench_suite_specs_resolve():
    """Every suite entry points at an importable runner."""
    for name, (fn, kwargs) in BENCH_SUITE.items():
        runner = resolve(fn)
        assert callable(runner), name
        for key in kwargs:
            assert key in runner.__code__.co_varnames, (name, key)
    assert set(QUICK_SUITE) <= set(BENCH_SUITE)


# ---------------------------------------------------------------------
# bench report + baseline


def _report(rev, recorded_at, scores):
    report = BenchReport(rev=rev, recorded_at=recorded_at,
                         calibration_seconds=0.1)
    for name, score in scores.items():
        report.experiments[name] = (score * 0.1, score)
    return report


def test_compare_flags_regressions_beyond_tolerance():
    baseline = _report("aaa", 1.0, {"fig13": 10.0, "fig16": 4.0})
    current = _report("bbb", 2.0, {"fig13": 13.0, "fig16": 4.1})
    _, regressions = current.compare(baseline, tolerance=0.25)
    assert len(regressions) == 1
    assert "fig13" in regressions[0]
    _, regressions = current.compare(baseline, tolerance=0.5)
    assert regressions == []


def test_compare_headline_is_events_per_second_when_available():
    baseline = _report("aaa", 1.0, {"fig13": 10.0})
    baseline.events["fig13"] = 1000
    current = _report("bbb", 2.0, {"fig13": 10.0})
    current.events["fig13"] = 500  # throughput halved, scores equal
    table, regressions = current.compare(baseline, tolerance=0.25)
    assert "events/s" in table
    assert len(regressions) == 1
    assert "events/s" in regressions[0]

    current.events["fig13"] = 1000  # throughput restored
    _, regressions = current.compare(baseline, tolerance=0.25)
    assert regressions == []


def test_compare_falls_back_to_score_without_event_counts():
    # schema-1 baselines carry no event counts: fig13 compares by
    # events/s, fig16 (missing on the baseline side) by score
    baseline = _report("aaa", 1.0, {"fig13": 10.0, "fig16": 4.0})
    baseline.events["fig13"] = 1000
    current = _report("bbb", 2.0, {"fig13": 10.0, "fig16": 6.0})
    current.events["fig13"] = 1000
    current.events["fig16"] = 500
    table, regressions = current.compare(baseline, tolerance=0.25)
    assert len(regressions) == 1
    assert "fig16" in regressions[0] and "score" in regressions[0]


def test_compare_treats_new_experiments_as_informational():
    baseline = _report("aaa", 1.0, {"fig13": 10.0})
    current = _report("bbb", 2.0, {"fig13": 10.0, "fig16": 99.0})
    table, regressions = current.compare(baseline)
    assert regressions == []
    assert "new" in table


def test_write_and_load_baseline_roundtrip(tmp_path):
    old = _report("aaa", 1.0, {"fig13": 10.0})
    new = _report("bbb", 2.0, {"fig13": 11.0})
    write_report(old, tmp_path)
    path = write_report(new, tmp_path)
    assert path.name == "BENCH_bbb.json"
    data = json.loads(path.read_text())
    assert data["experiments"]["fig13"]["score"] == 11.0
    # latest by recorded_at wins...
    assert load_baseline(tmp_path).rev == "bbb"
    # ...unless excluded (the snapshot the run just wrote)
    assert load_baseline(tmp_path, exclude_rev="bbb").rev == "aaa"
    assert load_baseline(tmp_path / "missing") is None


def test_load_baseline_skips_corrupt_snapshots(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    (tmp_path / "BENCH_empty.json").write_text("{}")
    assert load_baseline(tmp_path) is None
    write_report(_report("ok", 3.0, {"fig13": 1.0}), tmp_path)
    assert load_baseline(tmp_path).rev == "ok"


def test_report_from_dict_tolerates_missing_fields():
    report = _report_from_dict({"experiments": {
        "fig13": {"seconds": 1.0, "score": 5.0}}})
    assert report.rev == "unknown"
    assert report.experiments["fig13"] == (1.0, 5.0)
    assert report.speedup is None


def test_run_bench_rejects_unknown_experiments():
    with pytest.raises(ReproError):
        run_bench(names=("not-an-experiment",))


def test_report_pool_telemetry_roundtrips_and_tolerates_absence():
    report = _report("ccc", 3.0, {"fig13": 10.0})
    stats = PoolStats(workers=2, wall_seconds=1.0, tasks=2,
                      ipc_task_bytes=10, ipc_result_bytes=5,
                      shm_bytes=2048)
    stats.busy_seconds = {0: 0.4, 1: 0.6}
    stats.worker_tasks = {0: 1, 1: 1}
    stats.task_seconds = {"deadbeefdeadbeef": 0.5}
    report.pool = stats.as_dict()
    again = _report_from_dict(report.as_dict())
    assert again.pool == report.pool
    assert "(pool)" in again.table()
    # pre-pool snapshots (and serial-only runs) simply have no pool
    # block — compare() and the table must not care
    old = _report_from_dict({"experiments": {
        "fig13": {"seconds": 1.0, "score": 10.0}}})
    assert old.pool is None
    assert "(pool)" not in old.table()
    _, regressions = report.compare(old, tolerance=0.25)
    assert regressions == []


def test_load_cost_hints_reads_latest_baseline(tmp_path):
    assert load_cost_hints(tmp_path) == {}  # no snapshots yet
    old = _report("aaa", 1.0, {"fig13": 10.0})
    write_report(old, tmp_path)
    assert load_cost_hints(tmp_path) == {}  # serial snapshot: no pool
    new = _report("bbb", 2.0, {"fig13": 11.0})
    new.pool = {"task_seconds": {"deadbeefdeadbeef": 1.5}}
    write_report(new, tmp_path)
    assert load_cost_hints(tmp_path) == {"deadbeefdeadbeef": 1.5}
    assert load_cost_hints(tmp_path / "missing") == {}


def test_speedup_uses_serial_total_over_parallel_wall():
    report = _report("x", 1.0, {"a": 2.0, "b": 2.0})
    report.parallel = 4
    report.parallel_wall_seconds = 0.2
    assert report.speedup == pytest.approx(
        report.serial_total_seconds / 0.2)
    assert "speedup" in report.table()
