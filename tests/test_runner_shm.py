"""Shared-memory atom store: round trips, dedup, lifecycle, payload win.

The zero-copy contract: the parent publishes each distinct atom once,
workers rebuild read-only views, task payloads shrink to digest
references, and no segment outlives the run — including on exception
paths.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.atoms import _MEMO, atom_digest, atom_hexdigest
from repro.errors import ReproError
from repro.runner.pool import Task
from repro.runner.shm import (MIN_SEGMENT_BYTES, AtomClient,
                              SharedAtomStore, collect_shareable_atoms,
                              dumps_with_atoms, loads_with_atoms)
from repro.sim.state import SimState


def _leaked_segments() -> list[str]:
    try:
        return [name for name in os.listdir("/dev/shm")
                if name.startswith("repro_")]
    except FileNotFoundError:  # non-POSIX host
        return []


# ---------------------------------------------------------------------
# atom digests (the shared, memoised helper)


def test_atom_digest_matches_the_historical_scheme():
    arr = np.arange(16, dtype=np.int64)
    import hashlib
    meta = f"{arr.dtype}:{arr.shape}"
    expected = hashlib.sha256(meta.encode() + arr.tobytes()).digest()
    assert atom_digest(arr) == expected
    obj = ("tuple", 3)
    assert atom_digest(obj) == hashlib.sha256(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).digest()


def test_atom_digest_is_memoised_and_evicted_on_collection():
    arr = np.arange(1024, dtype=np.float64)
    first = atom_digest(arr)
    assert _MEMO[id(arr)][1] == first
    assert atom_digest(arr) is _MEMO[id(arr)][1]
    key = id(arr)
    del arr
    assert key not in _MEMO  # weakref callback evicted the entry


# ---------------------------------------------------------------------
# store -> client round trips


def test_store_round_trips_arrays_bytes_and_pickled_atoms():
    big = np.arange(100_000, dtype=np.float64)  # segment-sized
    small = np.arange(5, dtype=np.int32)        # inline
    blob = b"x" * (MIN_SEGMENT_BYTES * 2)
    dataset = {"cols": [big, small], "label": "tpch"}
    with SharedAtomStore() as store:
        store.publish([big, small, blob, dataset])
        assert store.segment_bytes >= big.nbytes + len(blob)
        client = AtomClient(store.handle())
        out_big = client.get(atom_hexdigest(big))
        assert np.array_equal(out_big, big)
        assert not out_big.flags.writeable
        assert np.array_equal(client.get(atom_hexdigest(small)), small)
        assert client.get(atom_hexdigest(blob)) == blob
        out_ds = client.get(atom_hexdigest(dataset))
        # the pickled atom resolved its column references to the
        # *attached* arrays, not fresh copies
        assert out_ds["cols"][0] is out_big
        assert out_ds["label"] == "tpch"
    assert _leaked_segments() == []


def test_store_deduplicates_by_content_digest():
    arr = np.arange(50_000, dtype=np.float64)
    twin = arr.copy()  # equal content, different object
    with SharedAtomStore() as store:
        store.publish([arr, twin, arr])
        assert store.segment_bytes == arr.nbytes  # published once
        # both identities resolve to the same digest for shipping
        assert store.index[id(arr)] == store.index[id(twin)]
    assert _leaked_segments() == []


def test_store_close_is_exception_safe_and_idempotent():
    arr = np.arange(50_000, dtype=np.float64)
    store = SharedAtomStore()
    with pytest.raises(RuntimeError):
        with store:
            store.publish([arr])
            assert store.segment_bytes > 0
            raise RuntimeError("mid-publish failure")
    assert _leaked_segments() == []
    store.close()  # second close is a no-op


def test_client_rejects_unknown_digests():
    with SharedAtomStore() as store:
        client = AtomClient(store.handle())
        with pytest.raises(ReproError):
            client.get("0" * 64)
        with pytest.raises(ReproError):
            store.get("0" * 64)


# ---------------------------------------------------------------------
# collection: what a task's kwargs contribute


def test_collect_shareable_atoms_finds_simstate_and_arrays():
    arr = np.arange(10_000, dtype=np.float64)
    state = SimState(payload=b"p" * 100, shared=(arr,))
    atoms = collect_shareable_atoms(
        dict(base=state, extra=[np.arange(3)], mode="dense"))
    assert any(a is arr for a in atoms)
    assert any(a is state.payload for a in atoms)
    assert not any(isinstance(a, str) for a in atoms)


# ---------------------------------------------------------------------
# acceptance: warm-start task payloads drop >= 10x


def test_forked_cell_payload_drops_at_least_10x():
    """ISSUE 9 acceptance: shared atoms cross the boundary once per
    run, so the per-task pickle shrinks by >= 10x for a warm-start
    cell that ships a SimState capture."""
    column = np.arange(150_000, dtype=np.float64)  # ~1.2 MB column
    graph = {"column": column, "counters": list(range(64))}
    state = SimState.capture(graph, shared=(column,))
    task = Task("tests.test_runner_pool:_double",
                dict(base=state, mode="adaptive", x=1))

    baseline = len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
    with SharedAtomStore() as store:
        store.publish(collect_shareable_atoms(task.kwargs))
        shipped = dumps_with_atoms(task, store.index)
        assert len(shipped) * 10 <= baseline, (len(shipped), baseline)
        # and the round trip still reconstructs a working capture
        client = AtomClient(store.handle())
        again = loads_with_atoms(shipped, client.get)
        restored = dict(again.kwargs)["base"].restore()
        assert np.array_equal(restored["column"], column)
        assert restored["counters"] == list(range(64))
    assert _leaked_segments() == []
