"""Discrete-event engine: ordering, cancellation, run bounds."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_delivered_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(0.3, log.append, "c")
    sim.schedule(0.1, log.append, "a")
    sim.schedule(0.2, log.append, "b")
    sim.run_until_idle()
    assert log == ["a", "b", "c"]


def test_ties_broken_by_scheduling_order():
    sim = Simulator()
    log = []
    for tag in "abc":
        sim.schedule(0.5, log.append, tag)
    sim.run_until_idle()
    assert log == ["a", "b", "c"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_cancelled_events_are_dropped():
    sim = Simulator()
    log = []
    event = sim.schedule(0.1, log.append, "cancelled")
    sim.schedule(0.2, log.append, "kept")
    sim.cancel(event)
    sim.run_until_idle()
    assert log == ["kept"]


def test_run_until_bound_stops_before_later_events():
    sim = Simulator()
    log = []
    sim.schedule(0.1, log.append, "early")
    sim.schedule(1.0, log.append, "late")
    delivered = sim.run(until=0.5)
    assert delivered == 1
    assert log == ["early"]
    assert sim.now == 0.5
    sim.run_until_idle()
    assert log == ["early", "late"]


def test_event_at_exact_until_is_delivered():
    sim = Simulator()
    log = []
    sim.schedule(0.5, log.append, "edge")
    sim.run(until=0.5)
    assert log == ["edge"]


def test_events_can_schedule_events():
    sim = Simulator()
    log = []

    def chain(n):
        log.append(n)
        if n < 3:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run_until_idle()
    assert log == [0, 1, 2, 3]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    assert sim.pending() == 2
    sim.cancel(e1)
    assert sim.pending() == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    sim.cancel(e1)
    assert sim.peek_time() == pytest.approx(0.2)


def test_max_events_bounds_delivery():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(0.1, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending() == 6


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
