"""Simulated processes and trace export."""

import pytest

from repro.errors import ReproError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.export import dump_records, dump_tracer, load_records
from repro.sim.process import every, spawn_process
from repro.sim.tracing import (MigrationRecord, PlacementRecord,
                               QueryRecord, TraceRecorder)


class TestProcess:
    def test_generator_runs_with_yielded_sleeps(self):
        sim = Simulator()
        log = []

        def body():
            log.append(sim.now)
            yield 0.5
            log.append(sim.now)
            yield 0.25
            log.append(sim.now)

        handle = spawn_process(sim, body())
        sim.run_until_idle()
        assert log == [0.0, 0.5, 0.75]
        assert handle.finished
        assert not handle.alive

    def test_start_delay(self):
        sim = Simulator()
        seen = []

        def body():
            seen.append(sim.now)
            yield 0.0

        spawn_process(sim, body(), start_delay=1.0)
        sim.run_until_idle()
        assert seen == [1.0]

    def test_cancel_stops_future_steps(self):
        sim = Simulator()
        ticks = []

        def body():
            while True:
                ticks.append(sim.now)
                yield 0.1

        handle = spawn_process(sim, body())
        sim.schedule(0.35, handle.cancel)
        sim.run_until_idle()
        assert len(ticks) == 4  # t=0, 0.1, 0.2, 0.3
        assert handle.cancelled
        assert not handle.alive

    def test_invalid_yield_rejected(self):
        sim = Simulator()

        def body():
            yield -1.0

        spawn_process(sim, body())
        with pytest.raises(SimulationError):
            sim.run_until_idle()

    def test_every_helper_with_condition(self):
        sim = Simulator()
        counter = []

        def tick():
            counter.append(sim.now)

        spawn_process(sim, every(0.2, tick,
                                 while_condition=lambda:
                                 len(counter) < 3))
        sim.run_until_idle()
        assert len(counter) == 3

    def test_every_rejects_bad_interval(self):
        with pytest.raises(SimulationError):
            every(0, lambda: None)


class TestExport:
    def _records(self):
        return [
            PlacementRecord(time=0.1, thread_id=1, core_id=2, node_id=0),
            MigrationRecord(time=0.2, thread_id=1, src_core=2,
                            dst_core=5, stolen=True),
            QueryRecord(time=0.3, client_id=0, query_name="q6",
                        start_time=0.0, elapsed=0.3),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        originals = self._records()
        assert dump_records(originals, path) == 3
        loaded = load_records(path)
        assert loaded == originals

    def test_dump_tracer(self, tmp_path):
        tracer = TraceRecorder()
        for record in self._records():
            tracer.emit(record)
        path = tmp_path / "trace.jsonl"
        assert dump_tracer(tracer, path) == 3
        assert load_records(path) == self._records()

    def test_unknown_type_rejected_on_dump(self, tmp_path):
        with pytest.raises(ReproError):
            dump_records([object()], tmp_path / "x.jsonl")

    def test_bad_json_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            load_records(path)

    def test_unknown_type_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "Mystery", "time": 1.0}\n')
        with pytest.raises(ReproError):
            load_records(path)

    def test_bad_fields_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "QueryRecord", "time": 1.0}\n')
        with pytest.raises(ReproError):
            load_records(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_records(self._records(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_records(path)) == 3

    def test_every_tracing_dataclass_is_registered(self):
        """A record type added to sim.tracing must be exportable —
        RECORD_TYPES is derived by introspection, so hand-listing
        cannot silently drop one."""
        import dataclasses

        from repro.sim import tracing
        from repro.sim.export import RECORD_TYPES

        declared = {cls.__name__ for cls in vars(tracing).values()
                    if isinstance(cls, type)
                    and dataclasses.is_dataclass(cls)
                    and cls.__module__ == tracing.__name__}
        assert declared == set(RECORD_TYPES)
        assert len(RECORD_TYPES) >= 7

    def test_new_record_type_is_picked_up_by_introspection(self):
        import dataclasses
        import importlib

        from repro.sim import export, tracing

        @dataclasses.dataclass(frozen=True, slots=True)
        class ProbeRecord:
            time: float

        ProbeRecord.__module__ = tracing.__name__
        tracing.ProbeRecord = ProbeRecord
        try:
            assert "ProbeRecord" in \
                importlib.reload(export).RECORD_TYPES
        finally:
            del tracing.ProbeRecord
            importlib.reload(export)

    def test_end_to_end_simulation_trace(self, tmp_path):
        """Export a real run's trace and reload it."""
        from repro.experiments.common import build_system
        from repro.db.clients import repeat_stream

        sut = build_system(scale=0.004, sim_scale=0.125)
        sut.run_clients(1, repeat_stream("q6", 1))
        path = tmp_path / "run.jsonl"
        count = dump_tracer(sut.os.tracer, path)
        assert count == len(sut.os.tracer)
        assert load_records(path) == sut.os.tracer.all()
