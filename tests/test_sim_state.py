"""Unit tests for snapshot/fork (:mod:`repro.sim.state`) and heap hygiene.

The property tests in ``tests/test_props_sim_state.py`` pin the
behavioural equivalence of forked vs uninterrupted runs over random
programs; these tests pin the mechanism piece by piece — shared-atom
identity, registered globals, pickle-ability of the capture itself, the
guard rails, and the lazy-cancel heap compaction bookkeeping.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import _COMPACT_MIN_DEAD, Simulator
from repro.sim.state import (SimState, register_global_state,
                             registered_globals)


class _Append:
    """Picklable callback: log (tag, now, rng draw) on delivery."""

    __slots__ = ("harness", "tag")

    def __init__(self, harness, tag):
        self.harness = harness
        self.tag = tag

    def __call__(self):
        h = self.harness
        h.log.append((self.tag, h.sim.now, h.rng.random()))


class _Harness:
    """A tiny simulation graph: engine + log + RNG + optional atoms."""

    def __init__(self, atom=None):
        self.sim = Simulator()
        self.log = []
        self.rng = random.Random(42)
        self.atom = atom

    def schedule(self, n, spacing=0.5):
        for i in range(n):
            self.sim.schedule(spacing * (i + 1), _Append(self, i))


# ---------------------------------------------------------------------
# snapshot / restore


def test_fork_resumes_identically_to_uninterrupted_run():
    cold = _Harness()
    cold.schedule(8)
    cold.sim.run()

    warm = _Harness()
    warm.schedule(8)
    warm.sim.run(max_events=3)
    state = warm.sim.snapshot(root=warm)
    fork = Simulator.restore(state)
    fork.sim.run()
    assert fork.log == cold.log
    assert fork.sim.now == cold.sim.now
    assert fork.sim.pending() == 0


def test_each_restore_is_an_independent_fork():
    base = _Harness()
    base.schedule(6)
    base.sim.run(max_events=2)
    state = base.sim.snapshot(root=base)

    first = Simulator.restore(state)
    first.sim.run()
    # the first fork's run must not disturb the capture
    second = Simulator.restore(state)
    second.sim.run()
    assert first.log == second.log
    assert first.log is not second.log
    # nor the original, which still holds its own pending events
    assert base.sim.pending() == 4


def test_rng_stream_is_captured():
    base = _Harness()
    base.schedule(4)
    base.sim.run(max_events=2)  # advances base.rng
    state = base.sim.snapshot(root=base)
    fork_a = Simulator.restore(state)
    fork_b = Simulator.restore(state)
    fork_a.sim.run()
    fork_b.sim.run()
    # both forks continue the RNG stream from the same point
    assert [entry[2] for entry in fork_a.log[2:]] \
        == [entry[2] for entry in fork_b.log[2:]]


def test_shared_atoms_are_referenced_not_copied():
    atom = np.arange(1000, dtype=np.float64)
    base = _Harness(atom=atom)
    base.schedule(2)
    state = base.sim.snapshot(root=base, shared=(atom,))
    assert state.size_bytes() < atom.nbytes  # externalised, not inlined
    fork = Simulator.restore(state)
    assert fork.atom is atom


def test_unshared_atoms_are_deep_copied():
    atom = np.arange(10, dtype=np.float64)
    base = _Harness(atom=atom)
    state = base.sim.snapshot(root=base)
    fork = Simulator.restore(state)
    assert fork.atom is not atom
    assert np.array_equal(fork.atom, atom)


def test_simstate_itself_pickles():
    """Captures must travel across the spawn pool."""
    atom = np.arange(16, dtype=np.float64)
    base = _Harness(atom=atom)
    base.schedule(5)
    base.sim.run(max_events=2)
    state = base.sim.snapshot(root=base, shared=(atom,))
    clone = pickle.loads(pickle.dumps(state))
    fork_direct = Simulator.restore(state)
    fork_shipped = Simulator.restore(clone)
    fork_direct.sim.run()
    fork_shipped.sim.run()
    assert fork_shipped.log == fork_direct.log


def test_snapshot_refuses_mid_dispatch():
    harness = _Harness()
    caught = []

    class _Snapshotter:
        def __init__(self, h):
            self.h = h

        def __call__(self):
            try:
                self.h.sim.snapshot(root=self.h)
            except SimulationError as exc:
                caught.append(str(exc))

    harness.sim.schedule(1.0, _Snapshotter(harness))
    harness.sim.run()
    assert caught and "run() is active" in caught[0]


def test_capture_rejects_unpicklable_graphs_with_hint():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError, match="local closures"):
        sim.snapshot()


def test_registered_globals_round_trip():
    box = {"value": 7}
    register_global_state("test.box", lambda: box["value"],
                          lambda v: box.__setitem__("value", v))
    try:
        sim = Simulator()
        state = sim.snapshot()
        box["value"] = 99
        Simulator.restore(state)
        assert box["value"] == 7
        assert state.globals_["test.box"] == 7
    finally:
        from repro.sim import state as state_mod
        state_mod._GLOBAL_STATE.pop("test.box", None)


def test_thread_id_counter_is_registered():
    assert "opsys.thread.next_id" in registered_globals()


def test_fingerprint_is_stable_and_content_sensitive():
    def build(n):
        h = _Harness()
        h.schedule(n)
        return h.sim.snapshot(root=h)

    assert build(3).fingerprint() == build(3).fingerprint()
    assert build(3).fingerprint() != build(4).fingerprint()
    # survives a pickle round trip (spawn-pool shipping)
    state = build(3)
    assert pickle.loads(pickle.dumps(state)).fingerprint() \
        == state.fingerprint()


def test_restore_rejects_unknown_shared_atom():
    atom = np.arange(4, dtype=np.float64)
    base = _Harness(atom=atom)
    state = base.sim.snapshot(root=base, shared=(atom,))
    stripped = SimState(payload=state.payload, shared=(),
                        globals_=state.globals_)
    with pytest.raises(SimulationError, match="shared atom"):
        stripped.restore()


# ---------------------------------------------------------------------
# heap compaction


def _noop():
    pass


def test_compaction_drops_dead_cells_and_resets_counter():
    sim = Simulator()
    events = [sim.schedule(float(i), _noop) for i in range(300)]
    # cancel just below the trigger: nothing compacted yet
    for event in events[: _COMPACT_MIN_DEAD - 1]:
        sim.cancel(event)
    assert sim._dead == _COMPACT_MIN_DEAD - 1
    assert sim._queued() == 300
    # live=237 here, so dead*2 > live needs more cancels; push past both
    # thresholds and compaction must keep the dead tail bounded
    for event in events[_COMPACT_MIN_DEAD - 1: 200]:
        sim.cancel(event)
    assert sim.pending() == 100
    assert sim._dead < _COMPACT_MIN_DEAD
    assert sim._queued() == 100 + sim._dead
    assert sim._queued() < 300


def test_compaction_preserves_delivery_order():
    plain, compacted = Simulator(), Simulator()
    logs = ([], [])

    class _Log:
        def __init__(self, log, i):
            self.log = log
            self.i = i

        def __call__(self):
            self.log.append(self.i)

    for log, sim in zip(logs, (plain, compacted)):
        events = [sim.schedule(float(i % 7), _Log(log, i))
                  for i in range(400)]
        doomed = [e for i, e in enumerate(events) if i % 4 != 0]
        if sim is compacted:
            for event in doomed:  # triggers compaction repeatedly
                sim.cancel(event)
        else:
            for event in doomed:  # mark lazily, bypassing compaction
                event.cancelled = True
                sim._live -= 1
                sim._dead += 1
        sim.run()
    assert logs[1] == logs[0]
    assert plain.pending() == compacted.pending() == 0


def test_small_heaps_are_never_compacted():
    sim = Simulator()
    events = [sim.schedule(float(i), _noop) for i in range(20)]
    for event in events[:15]:
        sim.cancel(event)
    # dead*2 > live by far, but below the size floor
    assert sim._queued() == 20
    assert sim.pending() == 5
    assert sim.run() == 5


def test_pending_stays_exact_through_cancel_compact_deliver():
    sim = Simulator()
    events = [sim.schedule(1.0 + i, _noop) for i in range(200)]
    assert sim.pending() == 200
    for event in events[:150]:
        sim.cancel(event)
    assert sim.pending() == 50
    sim.cancel(events[0])  # double cancel: no effect
    assert sim.pending() == 50
    delivered = sim.run()
    assert delivered == 50
    assert sim.pending() == 0


# ---------------------------------------------------------------------
# calendar queue state through snapshot/fork


def test_populated_calendar_queue_round_trips():
    """Both tiers — near buckets and the far heap — survive capture.

    The warm-up prefix of a sweep leaves events straddling the horizon:
    same-timestamp bucket batches just ahead of ``now`` and far-future
    think-time events beyond it.  A fork must drain them in exactly the
    order the uninterrupted run would.
    """
    base = _Harness()
    # near tier: clustered, with exact-timestamp collisions
    for i in range(6):
        base.sim.schedule(0.001 * (i % 3), _Append(base, i))
    # far tier: beyond the default horizon
    for i in range(6, 12):
        base.sim.schedule(10.0 + 0.5 * (i % 4), _Append(base, i))
    # a dead cell queued in each tier must stay dead in the fork
    base.sim.cancel(base.sim.schedule(0.002, _Append(base, 97)))
    base.sim.cancel(base.sim.schedule(11.0, _Append(base, 98)))

    state = base.sim.snapshot(root=base)
    fork = Simulator.restore(state)
    assert fork.sim.pending() == base.sim.pending()
    assert fork.sim._queued() == base.sim._queued()

    base.sim.run_until_idle()
    fork.sim.run_until_idle()
    assert fork.log == base.log
    assert fork.sim.now == base.sim.now
    assert fork.sim.pending() == 0


def test_forked_queue_keeps_sequence_continuity():
    """Events scheduled after a fork keep global FIFO tie-breaking:
    the restored engine's sequence counter continues where the captured
    one stopped, so same-timestamp newcomers sort after survivors."""
    base = _Harness()
    base.sim.schedule(1.0, _Append(base, 0))
    state = base.sim.snapshot(root=base)

    for harness in (base, Simulator.restore(state)):
        harness.sim.schedule(1.0, _Append(harness, 1))
        harness.sim.run_until_idle()
    fork_log = harness.log
    assert fork_log == base.log
    assert [tag for tag, _, _ in fork_log] == [0, 1]
