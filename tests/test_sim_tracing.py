"""Trace recorder: typed retrieval and muting."""

from repro.sim.tracing import (MigrationRecord, PlacementRecord,
                               QueryRecord, TraceRecorder)


def _placement(t=0.0, tid=1, core=0, node=0):
    return PlacementRecord(time=t, thread_id=tid, core_id=core,
                           node_id=node)


def _migration(t=0.0, tid=1, src=0, dst=1, stolen=False):
    return MigrationRecord(time=t, thread_id=tid, src_core=src,
                           dst_core=dst, stolen=stolen)


def test_emission_order_preserved():
    tracer = TraceRecorder()
    tracer.emit(_placement(0.1))
    tracer.emit(_migration(0.2))
    tracer.emit(_placement(0.3))
    assert [type(r).__name__ for r in tracer.all()] == [
        "PlacementRecord", "MigrationRecord", "PlacementRecord"]


def test_typed_retrieval():
    tracer = TraceRecorder()
    tracer.emit(_placement())
    tracer.emit(_migration())
    assert len(tracer.of(PlacementRecord)) == 1
    assert len(tracer.of(MigrationRecord)) == 1
    assert len(tracer.of(QueryRecord)) == 0


def test_muting_suppresses_only_that_type():
    tracer = TraceRecorder()
    tracer.mute(PlacementRecord)
    tracer.emit(_placement())
    tracer.emit(_migration())
    assert len(tracer.of(PlacementRecord)) == 0
    assert len(tracer.of(MigrationRecord)) == 1


def test_unmute_restores_recording():
    tracer = TraceRecorder()
    tracer.mute(PlacementRecord)
    tracer.emit(_placement())
    tracer.unmute(PlacementRecord)
    tracer.emit(_placement())
    assert len(tracer.of(PlacementRecord)) == 1


def test_clear_keeps_muting_state():
    tracer = TraceRecorder()
    tracer.mute(PlacementRecord)
    tracer.emit(_migration())
    tracer.clear()
    assert len(tracer) == 0
    tracer.emit(_placement())
    assert len(tracer) == 0


def test_empty_tracer_is_still_a_valid_tracer():
    """Regression: an empty recorder is falsy via __len__; constructors
    must not replace it with a fresh one."""
    from repro.opsys.system import OperatingSystem
    from repro.hardware.prebuilt import small_numa

    tracer = TraceRecorder()
    os_ = OperatingSystem(small_numa(), tracer=tracer)
    assert os_.tracer is tracer
    assert os_.scheduler.tracer is tracer


def test_iter_of_is_lazy_and_matching():
    tracer = TraceRecorder()
    for i in range(5):
        tracer.emit(_placement(t=float(i)))
    times = [r.time for r in tracer.iter_of(PlacementRecord)]
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
