"""Parameterised TPC-H variants."""

import pytest

from repro.db.operators import relation_rows
from repro.db.plan import profile_query
from repro.workloads.tpch.params import (build_variants, q3_variant,
                                         q5_variant, q6_variant,
                                         q12_variant, q14_variant)
from repro.workloads.tpch.schema import date_index


@pytest.fixture(scope="module")
def catalog(tiny_dataset):
    return tiny_dataset.catalog()


def test_build_variants_inventory():
    variants = build_variants()
    assert len(variants) == 21
    assert "q6_y1994" in variants
    assert "q3_building" in variants
    assert "q5_asia" in variants
    assert "q12_mail_ship" in variants
    assert "q14_1995_09" in variants


@pytest.mark.parametrize("name,plan_builder", [
    ("q6", lambda: q6_variant(1994)),
    ("q3", lambda: q3_variant("MACHINERY")),
    ("q5", lambda: q5_variant("EUROPE")),
    ("q12", lambda: q12_variant("AIR", "TRUCK")),
    ("q14", lambda: q14_variant(1994, 3)),
])
def test_variants_evaluate_and_profile(name, plan_builder, catalog,
                                       tiny_dataset):
    plan = plan_builder()
    rel = plan.evaluate(catalog)
    profile = profile_query(plan, catalog, name,
                            tiny_dataset.byte_scale)
    assert profile.result_rows == relation_rows(rel)


def test_q6_year_oracle(catalog):
    li = catalog.table("lineitem").env()
    for year in (1993, 1996):
        plan = q6_variant(year)
        mask = ((li["l_shipdate"] >= date_index(f"{year}-01-01"))
                & (li["l_shipdate"] < date_index(f"{year + 1}-01-01"))
                & (li["l_discount"] >= 0.06 - 0.011)
                & (li["l_discount"] <= 0.06 + 0.011)
                & (li["l_quantity"] < 24))
        expected = (li["l_extendedprice"][mask]
                    * li["l_discount"][mask]).sum()
        assert plan.evaluate(catalog)["revenue"][0] \
            == pytest.approx(expected)


def test_segments_select_disjoint_customers(catalog):
    building = q3_variant("BUILDING").evaluate(catalog)
    machinery = q3_variant("MACHINERY").evaluate(catalog)
    # different parameters genuinely change the result
    if relation_rows(building) and relation_rows(machinery):
        assert set(building["l_orderkey"].tolist()) \
            != set(machinery["l_orderkey"].tolist())


def test_variants_run_on_an_engine(tiny_dataset):
    from repro.db.clients import repeat_stream
    from repro.experiments.common import build_system

    sut = build_system(scale=0.004, sim_scale=0.125, register="none")
    sut.engine.register_queries(build_variants())
    result = sut.run_clients(2, repeat_stream("q5_asia", 1))
    assert result.queries_completed == 2
