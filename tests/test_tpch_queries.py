"""The 22 TPC-H query plans: execution, oracle checks, profiling."""

import numpy as np
import pytest

from repro.db.operators import relation_rows
from repro.db.plan import profile_query
from repro.workloads.tpch import QUERY_NAMES, build_queries
from repro.workloads.tpch.schema import date_index, segment_code


@pytest.fixture(scope="module")
def dataset(tiny_dataset):
    return tiny_dataset


@pytest.fixture(scope="module")
def catalog(dataset):
    return dataset.catalog()


@pytest.fixture(scope="module")
def queries(dataset):
    return build_queries(scale=dataset.scale)


@pytest.fixture(scope="module")
def results(queries, catalog):
    return {name: plan.evaluate(catalog)
            for name, plan in queries.items()}


def test_all_22_queries_present(queries):
    assert sorted(queries) == sorted(QUERY_NAMES)
    assert len(queries) == 22


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_query_evaluates_and_profiles(name, queries, catalog, dataset):
    profile = profile_query(queries[name], catalog, name,
                            dataset.byte_scale)
    assert profile.stages[-1].label == "sql.resultSet"
    assert profile.total_cycles > 0
    assert all(s.cycles >= 0 for s in profile.stages)
    # stage wiring is acyclic and in-range
    for idx, stage in enumerate(profile.stages):
        for producer in (*stage.consumes, *stage.shared_consumes):
            assert 0 <= producer < idx


def test_q1_oracle(results, catalog):
    """Q1 against a direct numpy computation."""
    rel = results["q1"]
    li = catalog.table("lineitem").env()
    mask = li["l_shipdate"] <= date_index("1998-09-02")
    assert rel["count_order"].sum() == mask.sum()
    expected_sum_qty = li["l_quantity"][mask].sum()
    assert rel["sum_qty"].sum() == pytest.approx(expected_sum_qty)
    # 3 return flags x 2 statuses, minus combinations that cannot occur
    assert 1 <= relation_rows(rel) <= 6


def test_q1_group_consistency(results):
    rel = results["q1"]
    np.testing.assert_allclose(
        rel["avg_qty"], rel["sum_qty"] / rel["count_order"])


def test_q3_oracle(results, catalog):
    """Q3's revenue for the top row matches a direct computation."""
    rel = results["q3"]
    if relation_rows(rel) == 0:
        pytest.skip("tiny dataset produced no Q3 rows")
    cutoff = date_index("1995-03-15")
    li = catalog.table("lineitem").env()
    orders = catalog.table("orders").env()
    cust = catalog.table("customer").env()
    building = set(cust["c_custkey"][
        cust["c_mktsegment"] == segment_code("BUILDING")].tolist())
    order_ok = {
        int(ok) for ok, cd, ck in zip(
            orders["o_orderkey"], orders["o_orderdate"],
            orders["o_custkey"])
        if cd < cutoff and int(ck) in building}
    top_order = int(rel["l_orderkey"][0])
    mask = (li["l_orderkey"] == top_order) & (li["l_shipdate"] > cutoff)
    expected = (li["l_extendedprice"][mask]
                * (1 - li["l_discount"][mask])).sum()
    assert top_order in order_ok
    assert rel["revenue"][0] == pytest.approx(expected)
    # descending revenue
    assert (np.diff(rel["revenue"]) <= 1e-9).all()


def test_q4_counts_match_oracle(results, catalog):
    rel = results["q4"]
    li = catalog.table("lineitem").env()
    orders = catalog.table("orders").env()
    late_orders = set(li["l_orderkey"][
        li["l_commitdate"] < li["l_receiptdate"]].tolist())
    window = ((orders["o_orderdate"] >= date_index("1993-07-01"))
              & (orders["o_orderdate"] < date_index("1993-10-01")))
    expected = sum(1 for ok, in_window in
                   zip(orders["o_orderkey"], window)
                   if in_window and int(ok) in late_orders)
    assert rel["order_count"].sum() == expected


def test_q6_oracle(results, catalog):
    li = catalog.table("lineitem").env()
    mask = ((li["l_shipdate"] >= date_index("1997-01-01"))
            & (li["l_shipdate"] < date_index("1998-01-01"))
            & (li["l_discount"] >= 0.07 - 0.011)
            & (li["l_discount"] <= 0.07 + 0.011)
            & (li["l_quantity"] < 24))
    expected = (li["l_extendedprice"][mask]
                * li["l_discount"][mask]).sum()
    assert results["q6"]["revenue"][0] == pytest.approx(expected)


def test_q13_includes_zero_order_customers(results, catalog):
    rel = results["q13"]
    n_customers = catalog.table("customer").n_rows
    assert rel["custdist"].sum() == n_customers
    assert 0 in rel["c_count"].tolist()  # a third never order


def test_q14_is_a_percentage(results):
    value = results["q14"]["promo_revenue"][0]
    assert 0.0 <= value <= 100.0
    # PROMO is one of six first syllables: expect ~16 %
    assert 5.0 < value < 30.0


def test_q15_picks_the_max_revenue_supplier(results):
    rel = results["q15"]
    assert relation_rows(rel) >= 1
    assert (rel["total_revenue"] == rel["total_revenue"].max()).all()


def test_q18_respects_threshold(results):
    rel = results["q18"]
    if relation_rows(rel):
        assert (rel["sum_qty"] > 300).all()


def test_q21_at_most_100_rows_sorted(results):
    rel = results["q21"]
    assert relation_rows(rel) <= 100
    if relation_rows(rel) > 1:
        assert (np.diff(rel["numwait"]) <= 0).all()


def test_q22_customers_have_no_orders(results, catalog):
    rel = results["q22"]
    assert relation_rows(rel) >= 1
    assert (rel["numcust"] > 0).all()


def test_q2_min_cost_selection(results):
    rel = results["q2"]
    # ordered by account balance descending (first key)
    if relation_rows(rel) > 1:
        assert (np.diff(rel["s_acctbal"]) <= 1e-9).all()


def test_q11_value_threshold(results):
    rel = results["q11"]
    if relation_rows(rel) > 1:
        assert (np.diff(rel["value"]) <= 1e-6).all()
