"""TPC-H schema encodings and the synthetic generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.tpch import generate
from repro.workloads.tpch.schema import (MKT_SEGMENTS, NATION_REGION,
                                         NATIONS, REGIONS, brand_code,
                                         container_code, date_index,
                                         nation_code, region_code,
                                         segment_code, ship_mode_code,
                                         type_code, type_syllable1_codes,
                                         type_syllable3_codes)


class TestSchema:
    def test_date_index_epoch(self):
        assert date_index("1992-01-01") == 0
        assert date_index("1992-01-02") == 1
        assert date_index("1993-01-01") == 366  # 1992 is a leap year

    def test_bad_date_rejected(self):
        with pytest.raises(WorkloadError):
            date_index("not-a-date")
        with pytest.raises(WorkloadError):
            date_index("1992-13-01")

    def test_type_code_roundtrip(self):
        assert type_code("ECONOMY ANODIZED BRASS") == 0
        assert type_code("STANDARD POLISHED TIN") == 149
        assert type_code("PROMO BRUSHED COPPER") == 3 * 25 + 1 * 5 + 1

    def test_type_prefix_codes(self):
        promo = type_syllable1_codes("PROMO")
        assert len(promo) == 25
        assert all(code // 25 == 3 for code in promo)

    def test_type_suffix_codes(self):
        brass = type_syllable3_codes("BRASS")
        assert len(brass) == 30
        assert all(code % 5 == 0 for code in brass)

    def test_container_and_brand_codes(self):
        assert container_code("JUMBO BAG") == 0
        assert container_code("WRAP PKG") == 39
        assert brand_code("Brand#11") == 0
        assert brand_code("Brand#55") == 24
        with pytest.raises(WorkloadError):
            brand_code("Brand#60")
        with pytest.raises(WorkloadError):
            container_code("HUGE BOX")

    def test_name_lookups(self):
        assert nation_code("BRAZIL") == NATIONS.index("BRAZIL")
        assert region_code("ASIA") == REGIONS.index("ASIA")
        assert segment_code("BUILDING") == MKT_SEGMENTS.index("BUILDING")
        assert ship_mode_code("MAIL") == 2
        with pytest.raises(WorkloadError):
            nation_code("ATLANTIS")

    def test_nation_region_mapping_shape(self):
        assert len(NATION_REGION) == 25
        assert set(NATION_REGION) <= set(range(5))


class TestDatagen:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate(scale=0.005, sim_scale=0.5, seed=11)

    def test_all_tables_present(self, dataset):
        assert set(dataset.columns) == {
            "region", "nation", "supplier", "customer", "part",
            "partsupp", "orders", "lineitem"}

    def test_row_counts_scale(self, dataset):
        orders = len(dataset.columns["orders"]["o_orderkey"])
        lineitem = len(dataset.columns["lineitem"]["l_orderkey"])
        assert orders == int(1_500_000 * 0.005)
        # 1..7 lines per order, mean ~4
        assert 2 * orders < lineitem < 6 * orders

    def test_partsupp_four_per_part(self, dataset):
        parts = len(dataset.columns["part"]["p_partkey"])
        assert len(dataset.columns["partsupp"]["ps_partkey"]) == 4 * parts

    def test_lineitem_suppliers_join_partsupp(self, dataset):
        """Every (l_partkey, l_suppkey) must exist in partsupp (Q9)."""
        li = dataset.columns["lineitem"]
        ps = dataset.columns["partsupp"]
        pairs = set(zip(ps["ps_partkey"].tolist(),
                        ps["ps_suppkey"].tolist()))
        sample = list(zip(li["l_partkey"][:500].tolist(),
                          li["l_suppkey"][:500].tolist()))
        assert all(pair in pairs for pair in sample)

    def test_dates_ordered(self, dataset):
        li = dataset.columns["lineitem"]
        assert (li["l_receiptdate"] > li["l_shipdate"]).all()
        orders = dataset.columns["orders"]
        order_dates = np.repeat(
            orders["o_orderdate"],
            np.bincount(li["l_orderkey"] - 1,
                        minlength=len(orders["o_orderkey"])))
        assert (li["l_shipdate"] > order_dates).all()

    def test_a_third_of_customers_have_no_orders(self, dataset):
        custkeys = dataset.columns["orders"]["o_custkey"]
        assert not (custkeys % 3 == 0).any()

    def test_discounts_quantiles(self, dataset):
        li = dataset.columns["lineitem"]
        assert li["l_discount"].min() >= 0.0
        assert li["l_discount"].max() <= 0.10
        assert 1 <= li["l_quantity"].min()
        assert li["l_quantity"].max() <= 50

    def test_determinism(self):
        a = generate(scale=0.004, seed=5)
        b = generate(scale=0.004, seed=5)
        np.testing.assert_array_equal(
            a.columns["lineitem"]["l_shipdate"],
            b.columns["lineitem"]["l_shipdate"])

    def test_different_seed_differs(self):
        a = generate(scale=0.004, seed=5)
        b = generate(scale=0.004, seed=6)
        assert not np.array_equal(a.columns["lineitem"]["l_shipdate"],
                                  b.columns["lineitem"]["l_shipdate"])

    def test_byte_scale(self, dataset):
        assert dataset.byte_scale == pytest.approx(0.5 / 0.005)

    def test_fresh_tables_per_catalog(self, dataset):
        c1 = dataset.catalog()
        c2 = dataset.catalog()
        assert c1.table("lineitem") is not c2.table("lineitem")

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            generate(scale=0)
        with pytest.raises(WorkloadError):
            generate(scale=0.01, sim_scale=-1)

    def test_unknown_table_rejected(self, dataset):
        with pytest.raises(WorkloadError):
            dataset.table("missing")
