"""The multi-seed trial harness."""

import pytest

from repro.errors import ReproError
from repro.experiments.trials import TrialStats, run_trials


def test_stats_aggregation():
    stats = TrialStats(seeds=(1, 2, 3))
    stats.add({"x": 1.0, "y": 10.0})
    stats.add({"x": 2.0, "y": 10.0})
    stats.add({"x": 3.0, "y": 10.0})
    assert stats.mean("x") == pytest.approx(2.0)
    assert stats.std("x") == pytest.approx(1.0)
    assert stats.std("y") == 0.0
    assert stats.minmax("x") == (1.0, 3.0)


def test_single_sample_std_is_zero():
    stats = TrialStats(seeds=(1,))
    stats.add({"x": 5.0})
    assert stats.std("x") == 0.0


def test_missing_metric_rejected():
    stats = TrialStats(seeds=(1,))
    with pytest.raises(ReproError):
        stats.mean("nope")


def test_run_trials_drives_runner_per_seed():
    seen = []

    def runner(seed):
        seen.append(seed)
        return seed

    stats = run_trials(runner, extract=lambda r: {"value": r * 2.0},
                       seeds=(3, 5, 7))
    assert seen == [3, 5, 7]
    assert stats.mean("value") == pytest.approx(10.0)
    assert "Trials over seeds" in stats.table()


def test_empty_seeds_rejected():
    with pytest.raises(ReproError):
        run_trials(lambda s: s, extract=lambda r: {}, seeds=())


def test_trials_over_a_real_experiment():
    """Three seeds of a small mixed run: speedup mean is finite and the
    spread is bounded."""
    from repro.experiments import fig19_mixed_phases

    stats = run_trials(
        lambda seed: fig19_mixed_phases.run(
            n_clients=4, queries_per_client=2, scale=0.004,
            sim_scale=0.125, seed=seed, modes=(None, "adaptive")),
        extract=lambda r: {"speedup": r.mean_speedup()},
        seeds=(1, 2, 3))
    assert len(stats.samples["speedup"]) == 3
    assert 0.1 < stats.mean("speedup") < 10.0
