"""Unit helpers: conversions and formatting."""

import pytest

from repro import units


def test_binary_sizes():
    assert units.kib(1) == 1024
    assert units.mib(1) == 1024 ** 2
    assert units.gib(2) == 2 * 1024 ** 3


def test_decimal_bandwidths():
    assert units.gb_per_s(1) == 1e9
    assert units.mb_per_s(2.5) == 2.5e6


def test_frequencies_and_times():
    assert units.ghz(2.8) == 2.8e9
    assert units.usec(5) == pytest.approx(5e-6)
    assert units.msec(20) == pytest.approx(0.02)


def test_fmt_bytes_scales_suffix():
    assert units.fmt_bytes(512) == "512.00 B"
    assert units.fmt_bytes(2048) == "2.00 KiB"
    assert units.fmt_bytes(3 * 1024 ** 2) == "3.00 MiB"
    assert units.fmt_bytes(5 * 1024 ** 4) == "5.00 TiB"


def test_fmt_bandwidth_uses_decimal_steps():
    assert units.fmt_bandwidth(999) == "999.00 B/s"
    assert units.fmt_bandwidth(41.6e9) == "41.60 GB/s"


def test_fmt_seconds_adaptive_units():
    assert units.fmt_seconds(2e-6) == "2.0 us"
    assert units.fmt_seconds(0.020) == "20.00 ms"
    assert units.fmt_seconds(3.5) == "3.500 s"
