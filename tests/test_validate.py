"""The system validator: clean runs pass, corrupted states fail."""

import pytest

from repro.db.clients import repeat_stream
from repro.experiments.common import build_system
from repro.opsys.thread import SimThread, ThreadState
from repro.opsys.workitem import ListWorkSource, WorkItem
from repro.validate import InvariantViolation, SystemValidator

SCALE = 0.004
SIM = 0.125


def test_clean_system_passes():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    validator = SystemValidator(sut.os)
    validator.check()
    assert validator.checks_run == 1


def test_validator_attached_during_workload():
    sut = build_system(mode="adaptive", scale=SCALE, sim_scale=SIM)
    validator = SystemValidator(sut.os, sut.controller)
    handle = validator.attach(interval=0.02)
    sut.run_clients(4, repeat_stream("q6", 2))
    assert validator.checks_run > 5
    assert not handle.alive


def test_validator_runs_across_engines():
    for engine in ("monetdb", "sqlserver", "morsel"):
        sut = build_system(engine=engine, mode="dense", scale=SCALE,
                           sim_scale=SIM)
        validator = SystemValidator(sut.os, sut.controller)
        validator.attach(interval=0.05)
        sut.run_clients(2, repeat_stream("q1", 1))
        assert validator.checks_run > 0


def test_detects_duplicated_thread():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    thread = SimThread(ListWorkSource([WorkItem("x", cycles=1e9)]))
    thread.state = ThreadState.READY
    sut.os.scheduler.threads.add(thread)
    sut.os.scheduler._queues[0].append(thread)
    sut.os.scheduler._queues[1].append(thread)
    with pytest.raises(InvariantViolation, match="appears 2 times"):
        SystemValidator(sut.os).check()


def test_detects_orphaned_runnable_thread():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    thread = SimThread(ListWorkSource([WorkItem("x", cycles=1e9)]))
    thread.state = ThreadState.READY
    sut.os.scheduler.threads.add(thread)
    with pytest.raises(InvariantViolation, match="absent from every"):
        SystemValidator(sut.os).check()


def test_detects_queued_thread_on_released_core():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    sut.os.cpuset.set_mask([0, 1])
    thread = SimThread(ListWorkSource([WorkItem("x", cycles=1e9)]))
    thread.state = ThreadState.READY
    sut.os.scheduler.threads.add(thread)
    sut.os.scheduler._queues[5].append(thread)
    with pytest.raises(InvariantViolation, match="released core"):
        SystemValidator(sut.os).check()


def test_detects_time_accounting_corruption():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    sut.os.counters.add("useful_time", 0, 5.0)  # busy stays 0
    with pytest.raises(InvariantViolation, match="exceeds busy"):
        SystemValidator(sut.os).check()


def test_detects_controller_desync():
    sut = build_system(mode="dense", scale=SCALE, sim_scale=SIM)
    sut.controller.model.sync_nalloc(7)  # cpuset still holds 1 core
    with pytest.raises(InvariantViolation, match="nalloc"):
        SystemValidator(sut.os, sut.controller).check()


def test_detects_bad_queue_state():
    sut = build_system(scale=SCALE, sim_scale=SIM)
    thread = SimThread(ListWorkSource([WorkItem("x", cycles=1e9)]))
    thread.state = ThreadState.BLOCKED
    sut.os.scheduler._queues[0].append(thread)
    with pytest.raises(InvariantViolation, match="state blocked"):
        SystemValidator(sut.os).check()
