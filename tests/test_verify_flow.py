"""The dataflow engine: CFG shape, fixpoint, and property tests.

The property tests generate small structured programs (branches, loops,
try/except rollback) from a mini-AST, render them to Python, and check
the engine's fixpoint against an independent *structural* reference
interpreter that never builds a CFG: both must agree on the set of
abstract held-lease counts reachable at the normal exit and at the
escaped-exception exit.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.flow import (build_cfg, default_may_raise,
                               executed_parts, iter_functions)
from repro.verify.rules.lease import exit_states


def _parse_func(source: str, name: str = "f"):
    tree = ast.parse(source)
    return dict(iter_functions(tree))[name]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------

def test_straight_line_cfg_reaches_exit():
    func = _parse_func("def f():\n    x = 1\n    y = 2\n    return y\n")
    cfg = build_cfg(func)
    # entry, exit, raise_exit plus one node per statement
    assert len(cfg.stmts) >= 3 + 3
    normal, raised = exit_states(func)
    assert normal == frozenset({0})
    assert not raised


def test_branches_join():
    func = _parse_func(
        "def f(inv, t, c, flag):\n"
        "    if flag:\n"
        "        inv.acquire(t, c)\n")
    normal, _ = exit_states(func)
    assert normal == frozenset({0, 1})


def test_loop_saturates_at_many():
    func = _parse_func(
        "def f(inv, t, cores):\n"
        "    for c in cores:\n"
        "        inv.acquire(t, c)\n")
    normal, _ = exit_states(func)
    assert normal == frozenset({0, 1, 2})


def test_return_skips_following_code():
    func = _parse_func(
        "def f(inv, t, c):\n"
        "    inv.acquire(t, c)\n"
        "    return c\n"
        "    inv.acquire(t, c)\n")
    normal, _ = exit_states(func)
    assert normal == frozenset({1})


def test_exception_edge_routes_to_handler():
    func = _parse_func(
        "def f(inv, t, c):\n"
        "    inv.acquire(t, c)\n"
        "    try:\n"
        "        inv.acquire(t, c)\n"
        "    except Exception:\n"
        "        inv.release(t, c)\n"
        "        raise\n")
    normal, raised = exit_states(func)
    assert normal == frozenset({2})
    # the rollback handler resets the abstract count before re-raising;
    # the only other escape is the first acquire, with nothing held
    assert raised == frozenset({0})


def test_while_else_and_break():
    func = _parse_func(
        "def f(inv, t, c, flag):\n"
        "    while flag:\n"
        "        inv.acquire(t, c)\n"
        "        break\n"
        "    return c\n")
    normal, _ = exit_states(func)
    assert normal == frozenset({0, 1})


def test_executed_parts_of_compounds_exclude_bodies():
    module = ast.parse(
        "if cond():\n"
        "    body()\n"
        "for x in items:\n"
        "    body()\n")
    if_stmt, for_stmt = module.body
    if_parts = list(executed_parts(if_stmt))
    assert if_parts == [if_stmt.test]
    for_parts = list(executed_parts(for_stmt))
    assert for_stmt.iter in for_parts
    assert not any(isinstance(p, ast.Call) and
                   getattr(p.func, "id", "") == "body"
                   for part in for_parts for p in ast.walk(part))


def test_default_may_raise_sees_header_only():
    module = ast.parse("if flag:\n    risky()\n")
    # the If node itself only evaluates `flag`: it cannot raise even
    # though its body contains a call
    assert not default_may_raise(module.body[0])
    assert default_may_raise(ast.parse("risky()\n").body[0])


def test_iter_functions_qualnames():
    tree = ast.parse(
        "def top():\n"
        "    def inner():\n"
        "        pass\n"
        "class K:\n"
        "    def method(self):\n"
        "        pass\n")
    names = {name for name, _ in iter_functions(tree)}
    assert names == {"top", "top.<locals>.inner", "K.method"}


# ----------------------------------------------------------------------
# property tests: fixpoint vs a structural reference interpreter
# ----------------------------------------------------------------------

_MANY = 2


def _ref(node, states):
    """(normal-out states, escaped states) — no CFG, pure structure."""
    kind = node[0]
    if kind == "pass":
        return set(states), set()
    if kind == "acq":
        return {min(s + 1, _MANY) for s in states}, set(states)
    if kind == "rel":
        return {max(s - 1, 0) for s in states}, set(states)
    if kind == "seq":
        mid, r1 = _ref(node[1], states)
        out, r2 = _ref(node[2], mid)
        return out, r1 | r2
    if kind == "if":
        o1, r1 = _ref(node[1], states)
        o2, r2 = _ref(node[2], states)
        return o1 | o2, r1 | r2
    if kind == "while":
        head = set(states)
        while True:
            out, raises = _ref(node[1], head)
            if head | out == head:
                return head, raises
            head |= out
    if kind == "try":
        out, raises = _ref(node[1], states)
        # rollback handler: resets to 0, releases, re-raises
        return out, ({0} if raises else set())
    raise AssertionError(node)


def _render(node, depth):
    pad = "    " * depth
    kind = node[0]
    if kind == "pass":
        return [f"{pad}x = 1"]
    if kind == "acq":
        return [f"{pad}inv.acquire(t, c)"]
    if kind == "rel":
        return [f"{pad}inv.release(t, c)"]
    if kind == "seq":
        return _render(node[1], depth) + _render(node[2], depth)
    if kind == "if":
        return ([f"{pad}if flag:"] + _render(node[1], depth + 1)
                + [f"{pad}else:"] + _render(node[2], depth + 1))
    if kind == "while":
        return [f"{pad}while flag:"] + _render(node[1], depth + 1)
    if kind == "try":
        return ([f"{pad}try:"] + _render(node[1], depth + 1)
                + [f"{pad}except Exception:",
                   f"{pad}    inv.release(t, c)",
                   f"{pad}    raise"])
    raise AssertionError(node)


_programs = st.recursive(
    st.sampled_from([("pass",), ("acq",), ("rel",)]),
    lambda inner: st.one_of(
        st.tuples(st.just("seq"), inner, inner),
        st.tuples(st.just("if"), inner, inner),
        st.tuples(st.just("while"), inner),
        st.tuples(st.just("try"), inner),
    ),
    max_leaves=12)


@settings(max_examples=120, deadline=None)
@given(_programs)
def test_fixpoint_matches_reference_interpreter(program):
    source = ("def f(inv, t, c, flag):\n"
              + "\n".join(_render(program, 1)))
    func = _parse_func(source)
    normal, raised = exit_states(func)
    ref_normal, ref_raised = _ref(program, {0})
    assert set(normal) == ref_normal, source
    assert set(raised or frozenset()) == ref_raised, source


@settings(max_examples=60, deadline=None)
@given(_programs)
def test_fixpoint_terminates_and_is_bounded(program):
    source = ("def f(inv, t, c, flag):\n"
              + "\n".join(_render(program, 1)))
    func = _parse_func(source)
    normal, raised = exit_states(func)
    assert normal <= frozenset({0, 1, 2})
    assert raised is None or raised <= frozenset({0, 1, 2})
