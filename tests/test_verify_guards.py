"""Guard coverage and bounded reachability over the discretized space."""

import pytest

from repro.core.model import PerformanceModel
from repro.verify import (check_guard_coverage, check_reachability,
                          metric_samples, verify_performance_model)

from tests.fixtures.broken_models import (build_correct, build_gap,
                                          build_leaky, build_no_floor,
                                          build_overlap, build_overshoot)


# ------------------------------------------------------------------
# probing values
# ------------------------------------------------------------------

def test_samples_include_breakpoints_and_neighbourhoods():
    model = PerformanceModel(10, 70, 4)
    model.metric_domain = (0.0, 100.0)
    samples = metric_samples(model)
    assert 10.0 in samples and 70.0 in samples
    assert any(10.0 < s < 10.001 for s in samples)
    assert any(69.999 < s < 70.0 for s in samples)
    assert min(samples) == 0.0 and max(samples) == 100.0
    assert samples == sorted(samples)


def test_samples_respect_declared_breakpoints():
    model = build_gap()
    assert 25.0 in metric_samples(model)


# ------------------------------------------------------------------
# coverage
# ------------------------------------------------------------------

def test_shipped_model_coverage_is_exact():
    for th_min, th_max, domain in ((10, 70, (0.0, 100.0)),
                                   (0.1, 0.4, (0.0, 1.0))):
        model = PerformanceModel(th_min, th_max, 8)
        model.metric_domain = domain
        assert check_guard_coverage(model) == []


def test_gap_is_found_and_named():
    findings = check_guard_coverage(build_gap())
    assert findings
    assert all(f.check == "guard-coverage" for f in findings)
    assert any("gap" in f.message for f in findings)


def test_overlap_is_found_with_both_transitions_named():
    findings = check_guard_coverage(build_overlap())
    assert any("overlap" in f.message and "t0" in f.message
               and "t2" in f.message for f in findings)


def test_coverage_check_restores_the_marking():
    model = PerformanceModel(10, 70, 4)
    before = model.net.marking()
    check_guard_coverage(model)
    assert model.net.marking() == before


# ------------------------------------------------------------------
# bounded reachability
# ------------------------------------------------------------------

def test_shipped_model_reaches_every_core_count():
    model = PerformanceModel(10, 70, 8)
    model.metric_domain = (0.0, 100.0)
    assert check_reachability(model) == []


def test_missing_floor_transition_deadlocks():
    findings = check_reachability(build_no_floor())
    assert any("does not return" in f.message for f in findings)


def test_overshoot_breaks_core_conservation():
    findings = check_reachability(build_overshoot())
    assert any("allocated + free == n_total" in f.message
               for f in findings)


def test_leaky_net_fails_reachability_too():
    findings = check_reachability(build_leaky())
    assert findings


def test_reachability_restores_marking_and_log():
    model = PerformanceModel(10, 70, 4)
    model.run_cycle(50.0)
    before_marking = model.net.marking()
    before_log = list(model.net.fired_log)
    check_reachability(model)
    assert model.net.marking() == before_marking
    assert model.net.fired_log == before_log


def test_unreachable_core_counts_are_reported():
    # min_cores == n_total == 1 is trivially complete...
    model = PerformanceModel(10, 70, 1)
    model.metric_domain = (0.0, 100.0)
    assert check_reachability(model) == []
    # ...and a model whose t5 never fires strands below n_total
    from tests.fixtures.broken_models import BrokenModel, _build_net
    stranded = BrokenModel(_build_net(10.0, 70.0, 4, 1, t5_cap=1),
                           10.0, 70.0, 4)
    findings = check_reachability(stranded)
    assert any("unreachable" in f.message for f in findings)


# ------------------------------------------------------------------
# the whole driver
# ------------------------------------------------------------------

def test_driver_clean_on_correct_fixture():
    report = verify_performance_model(build_correct())
    assert report.ok
    assert set(report.checks_run) == {
        "structure", "p-invariant", "t-invariant", "guard-coverage",
        "reachability"}


@pytest.mark.parametrize("builder,check", [
    (build_gap, "guard-coverage"),
    (build_overlap, "guard-coverage"),
    (build_leaky, "p-invariant"),
    (build_no_floor, "reachability"),
    (build_overshoot, "reachability"),
])
def test_driver_names_the_violated_property(builder, check):
    report = verify_performance_model(builder())
    assert not report.ok
    assert any(f.check == check for f in report.findings)
