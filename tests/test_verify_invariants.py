"""P/T-invariant computation vs the hand-derived invariants of Figs 8-11.

The paper's 5-place / 8-transition net has exactly two minimal
semi-positive P-invariants and five minimal T-invariants, derivable by
hand from the incidence matrix (paper Figs 8-11):

* ``Checks + Idle + Stable + Overload = 1`` — the monitoring token is
  always in exactly one control place;
* ``Idle + Overload + Provision = 1`` — the core-count token is parked
  in Provision or in flight through Idle/Overload;
* firing cycles ``{t0,t4}``, ``{t0,t7}``, ``{t1,t5}``, ``{t1,t6}``,
  ``{t2,t3}`` — the five entry/exit pairs of Fig 7.
"""

import numpy as np
import pytest

from repro.core.model import PerformanceModel
from repro.verify import (invariant_supports, is_invariant, nullspace,
                          p_invariants, t_invariants)
from repro.verify.structure import NetStructure

from tests.fixtures.broken_models import build_leaky


@pytest.fixture
def structure() -> NetStructure:
    return NetStructure.from_net(PerformanceModel(10, 70, 16).net)


def test_p_invariants_match_hand_derivation(structure):
    invariants = p_invariants(structure)
    supports = set(invariant_supports(invariants, structure.places))
    assert supports == {
        frozenset({"Checks", "Idle", "Stable", "Overload"}),
        frozenset({"Idle", "Overload", "Provision"}),
    }
    # the weights are all 1: plain token-count conservation
    for vector in invariants:
        assert set(vector) <= {0, 1}


def test_t_invariants_match_hand_derivation(structure):
    supports = set(invariant_supports(t_invariants(structure),
                                      structure.transitions))
    assert supports == {
        frozenset({"t0", "t4"}), frozenset({"t0", "t7"}),
        frozenset({"t1", "t5"}), frozenset({"t1", "t6"}),
        frozenset({"t2", "t3"}),
    }
    # every T-invariant fires each member exactly once (one tick)
    for vector in t_invariants(structure):
        assert set(vector) <= {0, 1}


def test_specific_conservation_laws_hold(structure):
    assert is_invariant(structure, {"Checks": 1, "Idle": 1,
                                    "Stable": 1, "Overload": 1})
    assert is_invariant(structure, {"Idle": 1, "Overload": 1,
                                    "Provision": 1})
    # a wrong weighting is rejected
    assert not is_invariant(structure, {"Checks": 1, "Provision": 1})


def test_invariants_annihilate_incidence(structure):
    incidence = structure.incidence
    for y in p_invariants(structure):
        assert not (np.array(y) @ incidence).any()
    for x in t_invariants(structure):
        assert not (incidence @ np.array(x)).any()


def test_nullspace_dimensions(structure):
    incidence = structure.incidence
    # rank(C) = 3, so dim ker(C) = 8-3 = 5 and dim ker(C^T) = 5-3 = 2
    assert len(nullspace(incidence)) == 5
    assert len(nullspace(incidence.T)) == 2
    for basis_vector in nullspace(incidence):
        assert not (incidence @ np.array(basis_vector)).any()


def test_leaky_net_loses_checks_coverage():
    structure = NetStructure.from_net(build_leaky().net)
    covered = set()
    for support in invariant_supports(p_invariants(structure),
                                      structure.places):
        covered |= support
    assert "Checks" not in covered
    assert not is_invariant(structure, {"Checks": 1, "Idle": 1,
                                        "Stable": 1, "Overload": 1})


def test_invariants_independent_of_thresholds():
    # the structure is threshold-independent: HT/IMC model, same nets
    a = NetStructure.from_net(PerformanceModel(10, 70, 16).net)
    b = NetStructure.from_net(PerformanceModel(0.1, 0.4, 4).net)
    assert p_invariants(a) == p_invariants(b)
    assert t_invariants(a) == t_invariants(b)
