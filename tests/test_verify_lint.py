"""The determinism lint: every rule, the escape hatch, the shipped tree."""

from pathlib import Path

from repro.verify import lint_file, lint_tree, verify_source_tree

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _lint_snippet(tmp_path: Path, code: str, name="core/sample.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code)
    return lint_file(path, relative=name)


def test_wall_clock_call_is_flagged(tmp_path):
    findings = _lint_snippet(tmp_path, "import time\n"
                             "def tick():\n"
                             "    return time.time()\n")
    assert [f.check for f in findings] == ["lint:wall-clock"]
    assert findings[0].path == "core/sample.py"
    assert findings[0].line == 3
    assert findings[0].col == 12
    assert findings[0].location == "core/sample.py:3:12"


def test_datetime_now_is_flagged(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import datetime\n"
        "stamp = datetime.datetime.now()\n")
    assert any(f.check == "lint:wall-clock" for f in findings)


def test_monotonic_clock_allowed_outside_strict_zones(tmp_path):
    code = ("import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n")
    assert _lint_snippet(tmp_path, code,
                         name="experiments/sample.py") == []
    assert _lint_snippet(tmp_path, code, name="sim/sample.py")


def test_global_random_is_flagged(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import random\n"
        "def pick(items):\n"
        "    return random.choice(items)\n",
        name="workloads/sample.py")
    assert [f.check for f in findings] == ["lint:unseeded-random"]


def test_seeded_rng_is_clean(tmp_path):
    assert _lint_snippet(
        tmp_path, "import random\n"
        "import numpy as np\n"
        "def make(seed):\n"
        "    return random.Random(seed), np.random.default_rng(seed)\n"
    ) == []


def test_unseeded_constructors_are_flagged(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import random\n"
        "import numpy as np\n"
        "a = random.Random()\n"
        "b = np.random.default_rng()\n")
    assert len([f for f in findings
                if f.check == "lint:unseeded-random"]) == 2


def test_numpy_legacy_global_is_flagged(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import numpy as np\n"
        "x = np.random.rand(4)\n", name="db/sample.py")
    assert [f.check for f in findings] == ["lint:unseeded-random"]


def test_mutable_default_is_flagged(tmp_path):
    findings = _lint_snippet(
        tmp_path, "def collect(into=[]):\n"
        "    return into\n", name="analysis/sample.py")
    assert [f.check for f in findings] == ["lint:mutable-default"]


def test_float_equality_flagged_only_in_strict_zones(tmp_path):
    code = "def same(x):\n    return x == 0.5\n"
    strict = _lint_snippet(tmp_path, code, name="opsys/sample.py")
    assert [f.check for f in strict] == ["lint:float-equality"]
    assert _lint_snippet(tmp_path, code,
                         name="workloads/sample.py") == []


def test_integer_equality_is_fine(tmp_path):
    assert _lint_snippet(tmp_path,
                         "def same(x):\n    return x == 3\n") == []


def test_scoped_allow_comment_suppresses(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import time\n"
        "def tick():\n"
        "    return time.time()  # verify: allow=lint:wall-clock\n")
    assert findings == []


def test_blanket_allow_still_suppresses_but_warns(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import time\n"
        "def tick():\n"
        "    return time.time()  # verify: allow\n")
    assert [f.check for f in findings] == ["lint:blanket-allow"]
    assert findings[0].severity == "warning"


def test_lint_tree_walks_recursively(tmp_path):
    (tmp_path / "core").mkdir()
    (tmp_path / "core" / "a.py").write_text(
        "import time\nnow = time.time()\n")
    (tmp_path / "clean.py").write_text("x = 1\n")
    findings = lint_tree(tmp_path)
    assert [(f.path, f.line) for f in findings] == [("core/a.py", 2)]


def test_shipped_source_tree_is_clean():
    report = verify_source_tree(SRC_ROOT)
    assert report.ok, report.render()
    assert set(report.checks_run) >= {
        "lint:wall-clock", "lint:unseeded-random",
        "lint:mutable-default", "lint:float-equality",
        "flow:lease-rollback", "flow:lease-unpaired",
        "flow:lease-outside-actuator", "flow:spawn-unpicklable",
        "flow:spawn-global-mutable", "flow:set-iteration"}
    assert not report.findings, report.render()
