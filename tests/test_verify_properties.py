"""Property tests: conservation and Checks-return under random configs.

Hypothesis drives the performance model with random valid threshold
pairs and random tick sequences and asserts the invariants the static
layer proves — the dynamic counterpart that would catch a divergence
between the analyses and the executable semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PerformanceModel
from repro.verify import verify_performance_model

#: a valid (th_min, th_max) pair over the CPU-load range
thresholds = st.tuples(
    st.floats(min_value=0.0, max_value=95.0, allow_nan=False,
              allow_infinity=False),
    st.floats(min_value=1.0, max_value=95.0, allow_nan=False,
              allow_infinity=False),
).map(lambda pair: (pair[0], pair[0] + pair[1]))

#: machine/floor sizing with 1 <= n_min <= initial <= n_total
sizing = st.integers(min_value=1, max_value=8).flatmap(
    lambda n_total: st.tuples(
        st.just(n_total),
        st.integers(min_value=1, max_value=n_total)).flatmap(
            lambda pair: st.tuples(
                st.just(pair[0]),
                st.just(pair[1]),
                st.integers(min_value=pair[1], max_value=pair[0]))))

#: a tick sequence of metric values (in and out of the stable band)
metrics = st.lists(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False,
              allow_infinity=False), min_size=1, max_size=60)


@given(thresholds=thresholds, sizing=sizing, metrics=metrics)
@settings(max_examples=60, deadline=None)
def test_token_conservation_under_random_ticks(thresholds, sizing,
                                               metrics):
    th_min, th_max = thresholds
    n_total, n_min, initial = sizing
    model = PerformanceModel(th_min, th_max, n_total, n_min=n_min,
                             initial_cores=initial)
    for metric in metrics:
        chain = model.run_cycle(metric)
        # the Checks token returned: exactly it plus the core token
        assert len(model.net.place("Checks")) == 1
        assert model.net.total_tokens() == 2
        # core conservation: allocated + free == n_total, never outside
        assert n_min <= model.nalloc <= n_total
        assert 0 <= n_total - model.nalloc <= n_total - n_min
        # one entry, one exit, consistent classification
        assert chain.state == model.state_of(metric)


@given(thresholds=thresholds, metrics=metrics)
@settings(max_examples=30, deadline=None)
def test_core_count_moves_one_step_per_tick(thresholds, metrics):
    th_min, th_max = thresholds
    model = PerformanceModel(th_min, th_max, 6)
    previous = model.nalloc
    for metric in metrics:
        model.run_cycle(metric)
        assert abs(model.nalloc - previous) <= 1
        previous = model.nalloc


@given(thresholds=thresholds, sizing=sizing)
@settings(max_examples=25, deadline=None)
def test_static_verification_holds_for_random_valid_thresholds(
        thresholds, sizing):
    th_min, th_max = thresholds
    n_total, n_min, initial = sizing
    model = PerformanceModel(th_min, th_max, n_total, n_min=n_min,
                             initial_cores=initial)
    report = verify_performance_model(model, grid=41)
    assert report.ok, report.render()
