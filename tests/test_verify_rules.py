"""The protocol analyzers: fixtures, suppressions, baseline, registry.

Every rule family has a known-bad fixture and a clean twin under
``tests/fixtures/verify/``; each test runs one family over one fixture
with a restricted rule set (so e.g. the confinement rule does not drown
the typestate rules) and asserts the exact findings.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ProtocolLintError
from repro.verify import (all_rules, apply_baseline, load_baseline,
                          raise_on_findings, rule_ids, run_file,
                          verify_files, verify_source_tree,
                          write_baseline)
from repro.verify.report import Finding

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "verify"

LEASE_FLOW = ("flow:lease-rollback", "flow:lease-unpaired")


def _run(name, relative, rules):
    return run_file(FIXTURES / name, relative=relative, rules=rules)


# ----------------------------------------------------------------------
# lease typestate
# ----------------------------------------------------------------------

def test_lease_bad_fixture_findings():
    findings = _run("lease_bad.py", "opsys/lease_bad.py", LEASE_FLOW)
    by_check = {}
    for f in findings:
        by_check.setdefault(f.check, []).append(f)
    # grow and split each leak a partial acquisition
    assert len(by_check["flow:lease-rollback"]) == 2
    # teardown's fast path exits holding the core
    assert len(by_check["flow:lease-unpaired"]) == 1
    assert set(by_check) == set(LEASE_FLOW)


def test_lease_good_twin_is_clean():
    assert _run("lease_good.py", "opsys/lease_good.py", LEASE_FLOW) == []


def test_confinement_depends_on_location():
    rules = ("flow:lease-outside-actuator",)
    outside = _run("lease_bad.py", "experiments/lease_bad.py", rules)
    # five inventory mutations plus one cpuset mutation
    assert len(outside) == 6
    assert {f.check for f in outside} == set(rules)
    # the same calls are the mechanism's own job in its home module
    assert _run("lease_bad.py", "opsys/inventory.py", rules) == []


# ----------------------------------------------------------------------
# spawn safety
# ----------------------------------------------------------------------

def test_spawn_bad_fixture_findings():
    findings = _run("spawn_bad.py", "sim/spawn_bad.py",
                    ("flow:spawn-unpicklable",
                     "flow:spawn-global-mutable"))
    checks = [f.check for f in findings]
    assert checks.count("flow:spawn-global-mutable") == 1
    # module-level lambda, subscribe sink, attribute store, on_exit=
    assert checks.count("flow:spawn-unpicklable") == 4


def test_spawn_good_twin_is_clean():
    assert _run("spawn_good.py", "sim/spawn_good.py",
                ("flow:spawn-unpicklable",
                 "flow:spawn-global-mutable")) == []


def test_spawn_rules_are_zone_gated():
    assert _run("spawn_bad.py", "analysis/spawn_bad.py",
                ("flow:spawn-unpicklable",)) == []


def test_dunder_module_metadata_is_not_state():
    # __all__ is a module-level list literal but not mutable state
    findings = run_file(FIXTURES.parent.parent.parent
                        / "src" / "repro" / "opsys" / "__init__.py",
                        relative="opsys/__init__.py",
                        rules=("flow:spawn-global-mutable",))
    assert findings == []


# ----------------------------------------------------------------------
# set-iteration ordering
# ----------------------------------------------------------------------

def test_ordering_bad_fixture_findings():
    findings = _run("ordering_bad.py", "opsys/ordering_bad.py",
                    ("flow:set-iteration",))
    assert len(findings) == 4
    assert {f.check for f in findings} == {"flow:set-iteration"}


def test_ordering_good_twin_is_clean():
    assert _run("ordering_good.py", "opsys/ordering_good.py",
                ("flow:set-iteration",)) == []


def test_ordering_rule_is_strict_zone_only():
    assert _run("ordering_bad.py", "workloads/ordering_bad.py",
                ("flow:set-iteration",)) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def _snippet(tmp_path, code, relative="opsys/sample.py", rules=None):
    path = tmp_path / Path(relative).name
    path.write_text(code)
    return run_file(path, relative=relative, rules=rules)


def test_scoped_allow_suppresses_named_rule(tmp_path):
    findings = _snippet(
        tmp_path,
        "def snap(cores: set):\n"
        "    return list(cores)  # verify: allow=flow:set-iteration\n")
    assert findings == []


def test_scoped_allow_leaves_other_rules_alone(tmp_path):
    findings = _snippet(
        tmp_path,
        "import time\n"
        "def snap(cores: set):\n"
        "    return (list(cores),"
        " time.time())  # verify: allow=flow:set-iteration\n")
    assert [f.check for f in findings] == ["lint:wall-clock"]


def test_unused_scoped_allow_is_reported(tmp_path):
    findings = _snippet(
        tmp_path,
        "def snap(cores):\n"
        "    return max(cores)  # verify: allow=flow:set-iteration\n")
    assert [f.check for f in findings] == ["lint:unused-suppression"]
    assert findings[0].severity == "warning"


def test_unused_allow_not_reported_on_subset_runs(tmp_path):
    # the allow names a rule that did not run: not stale, not exercised
    findings = _snippet(
        tmp_path,
        "def snap(cores: set):\n"
        "    return list(cores)  # verify: allow=flow:set-iteration\n",
        rules=("lint:wall-clock",))
    assert findings == []


def test_multi_rule_allow(tmp_path):
    findings = _snippet(
        tmp_path,
        "import time\n"
        "def snap(cores: set):\n"
        "    return (list(cores), time.time())"
        "  # verify: allow=flow:set-iteration,lint:wall-clock\n")
    assert findings == []


# ----------------------------------------------------------------------
# finding order, registry, escalation
# ----------------------------------------------------------------------

def test_findings_are_stably_sorted(tmp_path):
    findings = _snippet(
        tmp_path,
        "import time\n"
        "def b(cores: set):\n"
        "    return list(cores)\n"
        "def a():\n"
        "    return time.time()\n")
    keys = [(f.path, f.line, f.col) for f in findings]
    assert keys == sorted(keys)
    assert [f.check for f in findings] == [
        "flow:set-iteration", "lint:wall-clock"]


def test_registry_lists_every_rule_family():
    ids = rule_ids()
    assert {"flow:lease-rollback", "flow:lease-unpaired",
            "flow:lease-outside-actuator", "flow:spawn-unpicklable",
            "flow:spawn-global-mutable", "flow:set-iteration",
            "lint:wall-clock", "lint:blanket-allow",
            "lint:unused-suppression"} <= set(ids)
    for entry in all_rules():
        assert entry.summary
        assert entry.severity in ("error", "warning")


def test_unparseable_file_reports_parse_error(tmp_path):
    findings = _snippet(tmp_path, "def broken(:\n")
    assert [f.check for f in findings] == ["parse-error"]


def test_flow_findings_escalate_to_protocol_error():
    report = verify_files([FIXTURES / "ordering_bad.py"],
                          root=FIXTURES,
                          rules=("flow:set-iteration",))
    # fixtures dir is not a strict zone; re-run against a strict name
    findings = _run("ordering_bad.py", "opsys/ordering_bad.py",
                    ("flow:set-iteration",))
    report.findings = findings
    assert not report.ok
    with pytest.raises(ProtocolLintError):
        raise_on_findings(report)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def test_baseline_roundtrip_demotes_then_goes_stale(tmp_path):
    findings = _run("ordering_bad.py", "opsys/ordering_bad.py",
                    ("flow:set-iteration",))
    baseline_path = tmp_path / "baseline.json"
    count = write_baseline(findings, baseline_path)
    assert count == 4
    entries = load_baseline(baseline_path)

    # same findings again: all demoted to warnings, nothing stale
    demoted = apply_baseline(findings, entries)
    assert all(f.severity == "warning" for f in demoted)
    assert all(f.message.startswith("[grandfathered]")
               for f in demoted if f.check == "flow:set-iteration")

    # the one finding with a unique key fixed: its entry goes stale
    # (two 'for'-loop findings share a key, so dropping one of those
    # would rightly NOT be stale — the key still matches the other)
    remaining = [f for f in findings if "list()" not in f.message]
    demoted = apply_baseline(remaining, entries)
    stale = [f for f in demoted if f.check == "baseline:stale-entry"]
    assert len(stale) == 1
    assert all(f.severity == "warning" for f in stale)

    # a new finding is NOT grandfathered
    novel = Finding.at("flow:set-iteration", "a brand new hazard",
                       "opsys/new.py", 3)
    mixed = apply_baseline([*findings, novel], entries)
    assert any(f.severity == "error" for f in mixed)


def test_baseline_keys_survive_line_drift(tmp_path):
    findings = _run("ordering_bad.py", "opsys/ordering_bad.py",
                    ("flow:set-iteration",))
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    entries = load_baseline(baseline_path)
    shifted = [Finding.at(f.check, f.message, f.path, f.line + 40,
                          f.col) for f in findings]
    demoted = apply_baseline(shifted, entries)
    assert all(f.severity == "warning" for f in demoted)
    assert not [f for f in demoted
                if f.check == "baseline:stale-entry"]


def test_committed_baseline_is_empty_and_tree_is_clean():
    repo_root = Path(__file__).resolve().parent.parent
    committed = json.loads(
        (repo_root / "verify_baseline.json").read_text())
    assert committed == []
    report = verify_source_tree(repo_root / "src" / "repro")
    assert report.ok, report.render()
