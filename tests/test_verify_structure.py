"""Numeric net structure: matrices, dead transitions, markability."""

import numpy as np
import pytest

from repro.core.model import PerformanceModel
from repro.core.petrinet import Arc, OutputArc, PetriNet, Transition
from repro.verify.structure import (NetStructure, check_structure,
                                    markable_places)

PLACES = ("Checks", "Idle", "Stable", "Overload", "Provision")
TRANSITIONS = ("t0", "t1", "t2", "t4", "t7", "t5", "t6", "t3")


@pytest.fixture
def structure() -> NetStructure:
    return NetStructure.from_net(PerformanceModel(10, 70, 16).net)


def test_orders_follow_the_net(structure):
    assert structure.places == PLACES
    assert structure.transitions == TRANSITIONS


def test_pre_matrix_counts_input_arcs(structure):
    # hand-transcribed from the paper's Fig 8-11 arcs
    expected = {
        ("Checks", "t0"): 1, ("Provision", "t0"): 1,
        ("Checks", "t1"): 1, ("Provision", "t1"): 1,
        ("Checks", "t2"): 1,
        ("Idle", "t4"): 1, ("Idle", "t7"): 1,
        ("Overload", "t5"): 1, ("Overload", "t6"): 1,
        ("Stable", "t3"): 1,
    }
    for i, place in enumerate(PLACES):
        for j, transition in enumerate(TRANSITIONS):
            assert structure.pre[i, j] == expected.get(
                (place, transition), 0), (place, transition)


def test_post_matrix_counts_output_arcs(structure):
    expected = {
        ("Idle", "t0"): 1, ("Overload", "t1"): 1, ("Stable", "t2"): 1,
        ("Provision", "t4"): 1, ("Checks", "t4"): 1,
        ("Provision", "t7"): 1, ("Checks", "t7"): 1,
        ("Provision", "t5"): 1, ("Checks", "t5"): 1,
        ("Provision", "t6"): 1, ("Checks", "t6"): 1,
        ("Checks", "t3"): 1,
    }
    for i, place in enumerate(PLACES):
        for j, transition in enumerate(TRANSITIONS):
            assert structure.post[i, j] == expected.get(
                (place, transition), 0), (place, transition)


def test_incidence_is_post_minus_pre(structure):
    assert (structure.incidence
            == structure.post - structure.pre).all()
    # every column moves a bounded number of tokens
    assert np.abs(structure.incidence).max() == 1


def test_numeric_matches_symbolic_incidence(structure):
    model = PerformanceModel(10, 70, 16)
    pre_symbolic, post_symbolic, _ = model.net.incidence()
    for i, place in enumerate(PLACES):
        for j, transition in enumerate(TRANSITIONS):
            assert (structure.pre[i, j] > 0) == (
                pre_symbolic[(place, transition)] != 0)
            assert (structure.post[i, j] > 0) == (
                post_symbolic[(place, transition)] != 0)


def test_shipped_model_is_structurally_clean(structure):
    assert check_structure(structure, {"Checks", "Provision"}) == []


def test_all_places_markable_from_entry(structure):
    assert markable_places(structure, {"Checks", "Provision"}) \
        == set(PLACES)


def _net_with_dead_branch() -> PetriNet:
    net = PetriNet()
    for place in ("Checks", "Stable", "Limbo"):
        net.add_place(place)
    net.add_transition(Transition(
        "enter", inputs=[Arc("Checks", ("u",), "u")],
        outputs=[OutputArc("Stable", lambda b: (b["u"],), "u")]))
    net.add_transition(Transition(
        "back", inputs=[Arc("Stable", ("u",), "u")],
        outputs=[OutputArc("Checks", lambda b: (b["u"],), "u")]))
    # Limbo has no producer: 'escape' can never fire
    net.add_transition(Transition(
        "escape", inputs=[Arc("Limbo", ("u",), "u")],
        outputs=[OutputArc("Checks", lambda b: (b["u"],), "u")]))
    return net


def test_dead_transition_is_reported():
    structure = NetStructure.from_net(_net_with_dead_branch())
    findings = check_structure(structure, {"Checks"})
    dead = [f for f in findings if "structurally dead" in f.message]
    assert len(dead) == 1 and dead[0].location == "escape"
    unmarkable = [f for f in findings if f.location == "Limbo"]
    assert unmarkable and unmarkable[0].severity == "warning"


def test_source_and_sink_transitions_are_reported():
    net = PetriNet()
    net.add_place("Checks")
    net.add_transition(Transition(
        "sink", inputs=[Arc("Checks", ("u",), "u")], outputs=[]))
    structure = NetStructure.from_net(net)
    findings = check_structure(structure, {"Checks"})
    assert any("destroys a token" in f.message and f.location == "sink"
               for f in findings)
