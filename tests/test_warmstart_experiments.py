"""Warm-start forking must be invisible in experiment results.

Every sweep harness grew a ``warm_start`` path that simulates the shared
prefix once and forks the cells from a capture.  The contract is strict:
the warm path's cells are *byte-identical* (under pickle) to the cold
path's, for every figure and at every parameterisation — warm-starting
is a wall-clock optimisation, never a semantics change.  Parameters here
are tiny; the bench-smoke CI job re-checks fig13 at bench scale.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.experiments import (fig13_scheduling, fig14_memory,
                               fig15_selectivity, fig17_strategies,
                               trials)
from repro.experiments.common import (attach_controller, build_system,
                                      capture_system, fork_system,
                                      warm_system)


def test_fig13_warm_equals_cold():
    kwargs = dict(users=(1, 2), repetitions=2, scale=0.01, sim_scale=1.0)
    cold = fig13_scheduling.run(warm_start=False, **kwargs)
    warm = fig13_scheduling.run(warm_start=True, **kwargs)
    assert list(warm.cells) == list(cold.cells)
    assert pickle.dumps(warm.cells) == pickle.dumps(cold.cells)


def test_fig13_single_repetition_has_no_warmup_phase():
    """With one repetition there is nothing to amortise: every rep is
    measured, and warm/cold must still agree."""
    kwargs = dict(users=(1,), repetitions=1, scale=0.01, sim_scale=1.0)
    cold = fig13_scheduling.run(warm_start=False, **kwargs)
    warm = fig13_scheduling.run(warm_start=True, **kwargs)
    assert pickle.dumps(warm.cells) == pickle.dumps(cold.cells)


def test_fig14_warm_equals_cold():
    kwargs = dict(n_clients=4, repetitions=1, scale=0.01, sim_scale=1.0)
    cold = fig14_memory.run(warm_start=False, **kwargs)
    warm = fig14_memory.run(warm_start=True, **kwargs)
    assert pickle.dumps(warm.cells) == pickle.dumps(cold.cells)


def test_fig15_warm_equals_cold():
    kwargs = dict(levels=(0.02, 1.0), n_clients=2, repetitions=1,
                  scale=0.01, sim_scale=1.0)
    cold = fig15_selectivity.run(warm_start=False, **kwargs)
    warm = fig15_selectivity.run(warm_start=True, **kwargs)
    assert pickle.dumps(warm.misses) == pickle.dumps(cold.misses)


def test_fig17_warm_equals_cold():
    kwargs = dict(repetitions=1, warmup=1, scale=0.01, sim_scale=1.0)
    cold = fig17_strategies.run(warm_start=False, **kwargs)
    warm = fig17_strategies.run(warm_start=True, **kwargs)
    assert pickle.dumps(warm.cells) == pickle.dumps(cold.cells)


# ---------------------------------------------------------------------
# the harness primitives themselves


def test_attach_controller_refuses_double_attachment():
    sut = build_system(engine="monetdb", mode="dense", scale=0.01)
    with pytest.raises(ConfigError):
        attach_controller(sut, "sparse")


def test_capture_and_fork_share_the_dataset():
    sut = build_system(engine="monetdb", mode=None, scale=0.01)
    fork = fork_system(capture_system(sut))
    assert fork.dataset is sut.dataset
    assert fork.os is not sut.os


def test_warm_system_capture_is_small():
    """Shared-atom externalisation keeps captures in the kilobytes."""
    state = warm_system(scale=0.01)
    assert state.size_bytes() < 1_000_000


# ---------------------------------------------------------------------
# trials base passthrough


def _trial_runner(seed, base=None):
    return {"seed": seed, "forked": base is not None}


def test_run_trials_forwards_base_to_every_trial():
    base = warm_system(scale=0.01)
    stats = trials.run_trials(
        _trial_runner,
        extract=lambda r: {"forked": 1.0 if r["forked"] else 0.0,
                           "seed": float(r["seed"])},
        seeds=(1, 2, 3), base=base)
    assert stats.mean("forked") == 1.0
    assert stats.mean("seed") == 2.0


def test_run_trials_omits_base_by_default():
    stats = trials.run_trials(
        _trial_runner,
        extract=lambda r: {"forked": 1.0 if r["forked"] else 0.0},
        seeds=(1, 2))
    assert stats.mean("forked") == 0.0
