"""Workload drivers: microbench, phases, selectivity sweep."""

import pytest

from repro.db.catalog import Catalog
from repro.errors import WorkloadError
from repro.opsys.system import OperatingSystem
from repro.workloads.microbench import (AFFINITIES, Q6Microbench,
                                        run_q6_kernel)
from repro.workloads.phases import (mixed_phases_stream,
                                    stable_phases_schedule)
from repro.workloads.selectivity import (SELECTIVITY_LEVELS,
                                         selectivity_name,
                                         selectivity_query)
from repro.workloads.tpch.queries import QUERY_NAMES


@pytest.fixture
def loaded(tiny_dataset):
    os_ = OperatingSystem()
    catalog: Catalog = tiny_dataset.catalog()
    catalog.load(os_.vm, policy="single_node", loader_node=0)
    os_.counters.reset()
    return os_, catalog


class TestMicrobench:
    def test_kernel_completes_all_clients(self, loaded):
        os_, catalog = loaded
        result = run_q6_kernel(os_, catalog.table("lineitem"),
                               n_clients=3, repetitions=2)
        assert result.queries_completed == 6
        assert result.throughput > 0

    @pytest.mark.parametrize("affinity", AFFINITIES)
    def test_affinities_run(self, loaded, affinity):
        os_, catalog = loaded
        result = run_q6_kernel(os_, catalog.table("lineitem"),
                               n_clients=2, affinity=affinity)
        assert result.queries_completed == 2

    def test_dense_pins_one_node(self, loaded):
        os_, catalog = loaded
        bench = Q6Microbench(os_, catalog.table("lineitem"), 1,
                             affinity="dense")
        pins = [bench.pin_for(i) for i in range(8)]
        nodes = {os_.topology.node_of_core(p) for p in pins}
        assert nodes == {0}

    def test_sparse_spreads_nodes(self, loaded):
        os_, catalog = loaded
        bench = Q6Microbench(os_, catalog.table("lineitem"), 1,
                             affinity="sparse")
        pins = [bench.pin_for(i) for i in range(4)]
        nodes = {os_.topology.node_of_core(p) for p in pins}
        assert len(nodes) == 4

    def test_os_affinity_leaves_unpinned(self, loaded):
        os_, catalog = loaded
        bench = Q6Microbench(os_, catalog.table("lineitem"), 1,
                             affinity="os")
        assert bench.pin_for(0) is None

    def test_dense_generates_less_traffic_than_sparse(self, tiny_dataset):
        traffic = {}
        for affinity in ("dense", "sparse"):
            os_ = OperatingSystem()
            catalog = tiny_dataset.catalog()
            catalog.load(os_.vm, policy="single_node", loader_node=0)
            os_.counters.reset()
            run_q6_kernel(os_, catalog.table("lineitem"), n_clients=2,
                          affinity=affinity)
            traffic[affinity] = os_.counters.total("ht_tx_bytes")
        assert traffic["dense"] < traffic["sparse"]

    def test_bad_parameters_rejected(self, loaded):
        os_, catalog = loaded
        with pytest.raises(WorkloadError):
            Q6Microbench(os_, catalog.table("lineitem"), 0)
        with pytest.raises(WorkloadError):
            Q6Microbench(os_, catalog.table("lineitem"), 1,
                         affinity="diagonal")
        with pytest.raises(WorkloadError):
            Q6Microbench(os_, catalog.table("orders"), 1)


class TestPhases:
    def test_stable_schedule_defaults_to_22(self):
        assert stable_phases_schedule() == QUERY_NAMES

    def test_stable_schedule_custom(self):
        assert stable_phases_schedule(["q6", "q1"]) == ["q6", "q1"]
        with pytest.raises(WorkloadError):
            stable_phases_schedule([])

    def test_mixed_stream_deterministic_per_client(self):
        factory = mixed_phases_stream(10, seed=3)
        assert factory(0) == factory(0)
        assert factory(0) != factory(1)

    def test_mixed_stream_draws_from_pool(self):
        factory = mixed_phases_stream(50, seed=3, queries=["q1", "q2"])
        assert set(factory(0)) <= {"q1", "q2"}
        assert len(factory(0)) == 50

    def test_mixed_stream_validation(self):
        with pytest.raises(WorkloadError):
            mixed_phases_stream(0)
        with pytest.raises(WorkloadError):
            mixed_phases_stream(5, queries=[])


class TestSelectivity:
    def test_levels_match_paper(self):
        assert SELECTIVITY_LEVELS == (0.02, 0.04, 0.08, 0.16, 0.32,
                                      0.64, 1.00)

    def test_names(self):
        assert selectivity_name(0.02) == "sel_2pct"
        assert selectivity_name(1.0) == "sel_100pct"

    def test_query_selects_expected_fraction(self, tiny_dataset):
        catalog = tiny_dataset.catalog()
        li = catalog.table("lineitem").env()
        for level in (0.08, 0.32, 1.0):
            plan = selectivity_query(level)
            # the underlying filter keeps ~level of the rows
            mask = li["l_quantity"] <= 50.0 * level
            observed = mask.mean()
            assert observed == pytest.approx(level, abs=0.05)
            result = plan.evaluate(catalog)
            assert result["total"][0] == pytest.approx(
                li["l_extendedprice"][mask].sum())

    def test_bad_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            selectivity_query(0.0)
        with pytest.raises(WorkloadError):
            selectivity_query(1.5)
